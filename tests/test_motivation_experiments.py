"""Small-scale checks of the motivation experiments (Figs. 1-3, 15)."""

import pytest

from repro.experiments import (
    fig01_vpu_phases,
    fig02_bpu_phases,
    fig03_mlc_phases,
    fig15_vector_prevalence,
)


class TestFig01:
    def test_series_has_both_regimes(self):
        series = fig01_vpu_phases.vector_intensity_series(
            max_instructions=1_200_000
        )
        assert any(v < 0.01 for v in series)  # quiet stretches
        assert any(v > 0.05 for v in series)  # vector-busy stretches

    def test_series_values_are_fractions(self):
        series = fig01_vpu_phases.vector_intensity_series(max_instructions=200_000)
        assert all(0.0 <= v <= 1.0 for v in series)

    def test_deterministic(self):
        a = fig01_vpu_phases.vector_intensity_series(max_instructions=150_000)
        b = fig01_vpu_phases.vector_intensity_series(max_instructions=150_000)
        assert a == b


class TestFig02And03Series:
    def test_fig02_series_lengths_match(self):
        small, large = fig02_bpu_phases.ipc_series(
            max_instructions=600_000, sample_instructions=50_000
        )
        assert abs(len(small) - len(large)) <= 1
        assert all(v > 0 for v in small + large)

    def test_fig03_full_mlc_wins_overall(self):
        small, large = fig03_mlc_phases.ipc_series(
            max_instructions=800_000, sample_instructions=50_000
        )
        n = min(len(small), len(large))
        mean_small = sum(small[:n]) / n
        mean_large = sum(large[:n]) / n
        assert mean_large > mean_small


class TestFig15:
    def test_histogram_fractions_sum_to_one(self):
        hist = fig15_vector_prevalence.shard_histogram(
            "namd", max_instructions=300_000
        )
        assert hist["zero"] + hist["low"] + hist["high"] == pytest.approx(1.0)

    def test_sparse_app_has_low_shards(self):
        hist = fig15_vector_prevalence.shard_histogram(
            "namd", max_instructions=500_000
        )
        assert hist["low"] > 0.05  # the timeout-defeating pattern

    def test_dense_app_has_high_shards(self):
        hist = fig15_vector_prevalence.shard_histogram(
            "milc", max_instructions=500_000
        )
        assert hist["high"] > 0.5

    def test_scalar_app_is_mostly_zero(self):
        hist = fig15_vector_prevalence.shard_histogram(
            "mcf", max_instructions=300_000
        )
        assert hist["zero"] > 0.9
