"""End-to-end tests for the hybrid processor simulator."""

import pytest

from repro.sim.results import (
    energy_reduction,
    leakage_reduction,
    power_reduction,
    slowdown,
)
from repro.sim.simulator import GatingMode, HybridSimulator, run_simulation
from repro.uarch.config import MOBILE, SERVER
from repro.workloads.profiles import build_workload


class TestBasicRuns:
    def test_full_run_produces_result(self, run_quick):
        result, _sim = run_quick(GatingMode.FULL)
        assert result.instructions >= 120_000
        assert result.cycles > 0
        assert 0.05 < result.ipc < 4.0
        assert result.energy is not None
        assert result.energy.avg_power_w > 0

    def test_instruction_budget_respected(self, tiny_profile):
        workload = build_workload(tiny_profile)
        simulator = HybridSimulator(SERVER, workload)
        result = simulator.run(30_000)
        assert 30_000 <= result.instructions < 30_500

    def test_single_use(self, tiny_profile):
        workload = build_workload(tiny_profile)
        simulator = HybridSimulator(SERVER, workload)
        simulator.run(5_000)
        with pytest.raises(RuntimeError):
            simulator.run(5_000)

    def test_bad_budget(self, tiny_profile):
        simulator = HybridSimulator(SERVER, build_workload(tiny_profile))
        with pytest.raises(ValueError):
            simulator.run(0)

    def test_deterministic_replay(self, tiny_profile):
        a = run_simulation(SERVER, tiny_profile, GatingMode.FULL, 60_000)
        b = run_simulation(SERVER, tiny_profile, GatingMode.FULL, 60_000)
        assert a.cycles == b.cycles
        assert a.mispredicts == b.mispredicts
        assert a.energy.total_j == pytest.approx(b.energy.total_j)


class TestModes:
    def test_minimal_slower_than_full(self, run_quick):
        full, _ = run_quick(GatingMode.FULL)
        minimal, _ = run_quick(GatingMode.MINIMAL)
        assert slowdown(full, minimal) > 0.0

    def test_minimal_lower_leakage(self, run_quick):
        full, _ = run_quick(GatingMode.FULL)
        minimal, _ = run_quick(GatingMode.MINIMAL)
        assert leakage_reduction(full, minimal) > 0.3

    def test_minimal_unit_states(self, run_quick):
        minimal, sim = run_quick(GatingMode.MINIMAL)
        assert minimal.energy.vpu_gated_frac == 1.0
        assert minimal.energy.bpu_gated_frac == 1.0
        assert minimal.energy.mlc_way_residency == {1: 1.0}
        assert sim.core.vpu.emulated_ops > 0

    def test_powerchop_gates_and_saves(self, run_quick):
        full, _ = run_quick(GatingMode.FULL, max_instructions=400_000)
        chopped, sim = run_quick(GatingMode.POWERCHOP, max_instructions=400_000)
        assert chopped.windows > 5
        assert chopped.pvt_lookups > 0
        assert power_reduction(full, chopped) > 0.0
        assert abs(slowdown(full, chopped)) < 0.25

    def test_powerchop_stats_populated(self, run_quick):
        chopped, sim = run_quick(GatingMode.POWERCHOP, max_instructions=300_000)
        assert chopped.new_phases > 0
        assert chopped.cde_invocations >= chopped.new_phases
        assert chopped.translation_executions > 0
        assert "nucleus_cycles" in chopped.extra

    def test_timeout_mode_gates_idle_vpu(self, run_quick):
        timed, sim = run_quick(GatingMode.TIMEOUT, max_instructions=300_000)
        # tiny profile has a scalar phase long enough for the timeout.
        assert sim.timeout_controller is not None
        assert timed.energy.vpu_gated_frac > 0.0

    def test_mobile_design_runs(self, tiny_profile):
        result = run_simulation(MOBILE, tiny_profile, GatingMode.FULL, 60_000)
        assert result.design == MOBILE.name
        assert result.cycles > 0


class TestEnergyConsistency:
    def test_energy_equals_power_times_time(self, run_quick):
        result, _ = run_quick(GatingMode.FULL)
        energy = result.energy
        assert energy.total_j == pytest.approx(
            energy.avg_power_w * energy.seconds, rel=1e-9
        )

    def test_residencies_sum_to_one(self, run_quick):
        chopped, _ = run_quick(GatingMode.POWERCHOP, max_instructions=300_000)
        energy = chopped.energy
        assert sum(energy.mlc_way_residency.values()) == pytest.approx(1.0)
        assert 0.0 <= energy.vpu_on_frac <= 1.0
        assert 0.0 <= energy.bpu_on_frac <= 1.0

    def test_leakage_bounded_by_core_budget(self, run_quick):
        result, _ = run_quick(GatingMode.FULL)
        assert result.energy.avg_leakage_w <= SERVER.core_leakage_w * 1.0001


class TestComparisons:
    def test_comparison_requires_same_workload(self, run_quick, tiny_profile):
        full, _ = run_quick(GatingMode.FULL)
        other = run_simulation(MOBILE, tiny_profile, GatingMode.FULL, 60_000)
        with pytest.raises(ValueError):
            slowdown(full, other)

    def test_reduction_metrics_consistent(self, run_quick):
        full, _ = run_quick(GatingMode.FULL)
        minimal, _ = run_quick(GatingMode.MINIMAL)
        assert energy_reduction(full, minimal) <= power_reduction(full, minimal)
