"""Tests for the Criticality Decision Engine (Algorithm 1)."""

from repro.core.cde import CriticalityDecisionEngine, WindowStats
from repro.core.config import PowerChopConfig
from repro.uarch.config import SERVER

SIG = (1, 2, 3, 4)


def make_cde(managed=("vpu", "bpu", "mlc"), max_attempts=3):
    config = PowerChopConfig(
        managed_units=managed, max_profile_attempts=max_attempts
    )
    return CriticalityDecisionEngine(config, SERVER)


def window(
    instructions=10_000,
    simd=0,
    mlc_hits=0,
    mlc_accesses=None,
    branches=1000,
    mispredicts=20,
    large=True,
    full_ways=True,
):
    if mlc_accesses is None:
        mlc_accesses = mlc_hits
    return WindowStats(
        instructions=instructions,
        simd_instructions=simd,
        mlc_hits=mlc_hits,
        mlc_accesses=mlc_accesses,
        branches=branches,
        mispredicts=mispredicts,
        bpu_large_active=large,
        mlc_at_full_ways=full_ways,
    )


class TestNewPhase:
    def test_first_miss_starts_profiling(self):
        cde = make_cde()
        action, payload = cde.on_pvt_miss(SIG)
        assert action == "profile"
        assert payload.bpu_on is True  # window 1 measures the large BPU
        assert cde.new_phases == 1

    def test_two_window_protocol_with_bpu(self):
        cde = make_cde()
        cde.on_pvt_miss(SIG)
        # Window 1 (large active): not enough yet.
        assert cde.feed_profile_window(SIG, window(large=True)) is None
        # Second arming must route to the small predictor.
        action, payload = cde.on_pvt_miss(SIG)
        assert action == "profile"
        assert payload.bpu_on is False
        # Window 2 (small active): profiling completes.
        policy = cde.feed_profile_window(
            SIG, window(large=False, mispredicts=25)
        )
        assert policy is not None
        assert cde.policies_assigned == 1

    def test_single_window_without_bpu(self):
        cde = make_cde(managed=("vpu", "mlc"))
        cde.on_pvt_miss(SIG)
        policy = cde.feed_profile_window(SIG, window(simd=500, mlc_hits=500))
        assert policy is not None
        assert policy.vpu_on is True  # 5% SIMD > 1% threshold
        assert policy.bpu_on is True  # unmanaged
        assert policy.mlc_ways == 8

    def test_policy_uses_measured_scores(self):
        cde = make_cde(managed=("vpu", "mlc"))
        cde.on_pvt_miss(SIG)
        policy = cde.feed_profile_window(SIG, window(simd=0, mlc_hits=0))
        assert policy.vpu_on is False
        assert policy.mlc_ways == 1


class TestEvictedPhase:
    def test_reregistration(self):
        cde = make_cde(managed=("vpu",))
        cde.on_pvt_miss(SIG)
        policy = cde.feed_profile_window(SIG, window())
        action, payload = cde.on_pvt_miss(SIG)
        assert action == "register"
        assert payload == policy
        assert cde.reregistrations == 1

    def test_store_evicted(self):
        cde = make_cde()
        from repro.core.policies import min_power_policy

        policy = min_power_policy(SERVER)
        cde.store_evicted(SIG, policy)
        action, payload = cde.on_pvt_miss(SIG)
        assert (action, payload) == ("register", policy)


class TestUnprofileablePhases:
    def test_ignored_after_max_attempts(self):
        cde = make_cde(max_attempts=2)
        for _ in range(2):
            action, _ = cde.on_pvt_miss(SIG)
            assert action == "profile"
        action, payload = cde.on_pvt_miss(SIG)
        assert (action, payload) == ("ignore", None)
        assert cde.unprofileable_phases == 1
        # Subsequent misses stay cheap.
        assert cde.on_pvt_miss(SIG)[0] == "ignore"

    def test_partial_progress_resets_attempt_clock(self):
        cde = make_cde(max_attempts=2)
        cde.on_pvt_miss(SIG)
        cde.feed_profile_window(SIG, window(large=True))  # real data collected
        for _ in range(5):
            action, _ = cde.on_pvt_miss(SIG)
        assert action == "profile"  # never ignored once data exists


class TestMLCMeasurement:
    def test_low_demand_shortcut(self):
        cde = make_cde(managed=("mlc",))
        cde.on_pvt_miss(SIG, current_mlc_ways=1)
        # Gated ways, but demand is below Threshold_MLC2: scoreable.
        policy = cde.feed_profile_window(
            SIG, window(mlc_hits=0, mlc_accesses=5, full_ways=False)
        )
        assert policy is not None
        assert policy.mlc_ways == 1

    def test_high_demand_requires_full_ways(self):
        cde = make_cde(managed=("mlc",))
        cde.on_pvt_miss(SIG, current_mlc_ways=1)
        result = cde.feed_profile_window(
            SIG, window(mlc_hits=10, mlc_accesses=2000, full_ways=False)
        )
        assert result is None  # insufficient: must re-measure at full ways
        _action, payload = cde.on_pvt_miss(SIG, current_mlc_ways=1)
        assert payload.mlc_ways == SERVER.mlc_assoc

    def test_lazy_arming_keeps_current_ways(self):
        cde = make_cde(managed=("mlc",))
        _action, payload = cde.on_pvt_miss(SIG, current_mlc_ways=4)
        assert payload.mlc_ways == 4  # no upsize until proven necessary


class TestVPUMeasurement:
    def test_vpu_state_preserved_during_profiling(self):
        cde = make_cde()
        _action, payload = cde.on_pvt_miss(SIG, current_vpu_on=False)
        assert payload.vpu_on is False  # no costly VPU flip to measure SIMD
