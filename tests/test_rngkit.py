"""Stream-identity tests for the bulk RNG kit and pass-A closed forms.

The vectorized backend replaces scalar ``random.Random`` draws and branch
``next_outcome`` loops with bulk array materialization.  These tests pin
the contract word-for-word: every materialized value must be bit-identical
to what the scalar call sequence would have produced, and the scalar
object must be left in exactly the state the scalar sequence would leave
it in (so scalar and batched execution can interleave freely).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.isa.branches import (
    BiasedBranch,
    GlobalCorrelatedBranch,
    GlobalHistory,
    LoopBranch,
    PatternBranch,
)
from repro.sim.backends.rngkit import (
    bulk_randoms,
    peek_words,
    plan_stream_draws,
    raw_words,
    write_back,
)
from repro.sim.backends.vectorized import (
    _make_biased_refill,
    _make_loop_refill,
    _make_pattern_refill,
    _sat2_apply,
)
from repro.workloads.generator import AddressStream, MemoryBehavior


# ---------------------------------------------------------------------------
# Word-stream identity
# ---------------------------------------------------------------------------


def test_raw_words_matches_getrandbits():
    scalar = random.Random(1234)
    batched = random.Random(1234)
    words = raw_words(batched, 257)
    assert words.tolist() == [scalar.getrandbits(32) for _ in range(257)]
    assert batched.getstate() == scalar.getstate()
    # The written-back state continues the stream exactly.
    assert batched.getrandbits(32) == scalar.getrandbits(32)


def test_raw_words_mirror_is_reused_across_refills():
    scalar = random.Random(77)
    batched = random.Random(77)
    first = raw_words(batched, 64)
    mirror = batched._rk_mirror[0]
    second = raw_words(batched, 128)
    # No foreign draw in between: the cached bit generator is reused.
    assert batched._rk_mirror[0] is mirror
    expect = [scalar.getrandbits(32) for _ in range(192)]
    assert first.tolist() + second.tolist() == expect
    assert batched.getstate() == scalar.getstate()


def test_mirror_invalidated_by_foreign_draw():
    scalar = random.Random(9)
    batched = random.Random(9)
    a = raw_words(batched, 16)
    assert a.tolist() == [scalar.getrandbits(32) for _ in range(16)]
    # A draw the kit didn't make: the cached mirror is now stale and the
    # state compare must force a fresh transplant, not reuse.
    assert batched.random() == scalar.random()
    b = raw_words(batched, 16)
    assert b.tolist() == [scalar.getrandbits(32) for _ in range(16)]
    assert batched.getstate() == scalar.getstate()


def test_bulk_randoms_bit_identical():
    scalar = random.Random(42)
    batched = random.Random(42)
    vals = bulk_randoms(batched, 1000)
    assert vals.tolist() == [scalar.random() for _ in range(1000)]
    assert batched.getstate() == scalar.getstate()


def test_peek_words_does_not_advance():
    rng = random.Random(5)
    state = rng.getstate()
    peeked = peek_words(state, 64)
    assert rng.getstate() == state
    assert peeked.tolist() == raw_words(rng, 64).tolist()


def test_write_back_advances_exactly():
    scalar = random.Random(31)
    batched = random.Random(31)
    state = batched.getstate()
    write_back(batched, state, 7)
    for _ in range(7):
        scalar.getrandbits(32)
    assert batched.getstate() == scalar.getstate()
    # n_words == 0 restores the given state verbatim.
    write_back(batched, state, 0)
    assert batched.getstate() == state


# ---------------------------------------------------------------------------
# AddressStream control-flow replay
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "behavior",
    [
        MemoryBehavior(working_set_kb=4, pattern="loop", random_frac=0.3),
        MemoryBehavior(working_set_kb=3, pattern="random", random_frac=0.0),
        MemoryBehavior(working_set_kb=6, pattern="random", random_frac=0.4),
    ],
    ids=["loop-mixed", "pure-random", "random-mixed"],
)
def test_plan_stream_draws_matches_scalar(behavior):
    n = 500
    scalar = AddressStream(behavior, base=1 << 20, seed=2026)
    batched = AddressStream(behavior, base=1 << 20, seed=2026)
    expect = [scalar.next() for _ in range(n)]
    is_rand, rand_off = plan_stream_draws(batched, n)
    got = []
    cursor = 0
    stride = behavior.stride
    ws = batched._ws_bytes
    for flag, off in zip(is_rand.tolist(), rand_off.tolist()):
        if flag:
            got.append(batched.base + off)
        else:
            got.append(batched.base + cursor)
            cursor = (cursor + stride) % ws
    assert got == expect
    assert batched._rng.getstate() == scalar._rng.getstate()


# ---------------------------------------------------------------------------
# Closed-form outcome refills (pass A) at state boundaries
# ---------------------------------------------------------------------------

_HIST = GlobalHistory()


def _drain_refill(maker, model, tsucc=7, fsucc=9):
    otk: list = []
    osucc: list = []
    refill = maker(otk, osucc, model, tsucc, fsucc)
    refill()
    refill()  # second chunk starts from mid-stream model state
    return otk, osucc


@pytest.mark.parametrize("period", [2, 3, 5])
def test_loop_refill_matches_scalar_at_every_phase(period):
    for start in range(period):
        model = LoopBranch(period)
        model._count = start
        ref = LoopBranch(period)
        ref._count = start
        otk, osucc = _drain_refill(_make_loop_refill, model)
        expect = [int(ref.next_outcome(_HIST)) for _ in range(len(otk))]
        assert otk == expect
        assert osucc == [7 if t else 9 for t in expect]
        assert model._count == ref._count


def test_pattern_refill_matches_scalar_at_every_phase():
    pattern = (True, True, False, True, False)
    for start in range(len(pattern)):
        model = PatternBranch(pattern)
        model._pos = start
        ref = PatternBranch(pattern)
        ref._pos = start
        otk, osucc = _drain_refill(_make_pattern_refill, model)
        expect = [int(ref.next_outcome(_HIST)) for _ in range(len(otk))]
        assert otk == expect
        assert osucc == [7 if t else 9 for t in expect]
        assert model._pos == ref._pos


def test_biased_refill_matches_scalar_stream():
    model = BiasedBranch(0.31, seed=11)
    ref = BiasedBranch(0.31, seed=11)
    otk, osucc = _drain_refill(_make_biased_refill, model)
    expect = [int(ref.next_outcome(_HIST)) for _ in range(len(otk))]
    assert otk == expect
    assert osucc == [7 if t else 9 for t in expect]
    assert model._rng.getstate() == ref._rng.getstate()


@pytest.mark.parametrize("invert", [False, True])
def test_global_correlated_closed_form(invert):
    offsets = (0, 3, 15)
    model = GlobalCorrelatedBranch(offsets=offsets, noise=0.0, invert=invert)
    mask = 0
    for off in offsets:
        mask |= 1 << off
    hist = GlobalHistory(depth=16)
    feed = random.Random(3)
    for _ in range(64):
        # The walk's closed form: parity of the masked history bits.
        closed = bool((hist.bits & mask).bit_count() & 1) ^ invert
        assert model.next_outcome(hist) == closed
        hist.push(feed.random() < 0.5)


# ---------------------------------------------------------------------------
# Saturating-counter scan kernel
# ---------------------------------------------------------------------------


def test_sat2_apply_matches_scalar_reference():
    rng = np.random.default_rng(7)
    for n in (1, 2, 7, 100, 1000):
        cells = rng.integers(0, 6, size=n)
        tk = rng.integers(0, 2, size=n).astype(bool)
        table_a = [int(x) for x in rng.integers(0, 4, size=6)]
        table_b = list(table_a)
        pre_ref = []
        for c, t in zip(cells.tolist(), tk.tolist()):
            x = table_b[c]
            pre_ref.append(x)
            table_b[c] = min(3, max(0, x + (1 if t else -1)))
        pre = _sat2_apply(table_a, cells, tk)
        assert pre.tolist() == pre_ref
        assert table_a == table_b
