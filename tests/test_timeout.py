"""Tests for the HW-only timeout VPU-gating baseline (§V-E)."""

import pytest

from repro.core.timeout import TimeoutVPUController
from repro.isa.blocks import BasicBlock, BlockExec
from repro.isa.instructions import InstructionMix
from repro.uarch.config import SERVER
from repro.uarch.core import CoreModel


def block_exec(vector=0):
    mix = InstructionMix(scalar=5, vector=vector, has_branch=False)
    block = BasicBlock(0x100, mix, None)
    return BlockExec(block, False, ())


def make_controller(timeout=1000.0):
    core = CoreModel(SERVER)
    return TimeoutVPUController(SERVER, core, timeout), core


class TestTimeout:
    def test_gates_off_after_idle_period(self):
        controller, core = make_controller(timeout=1000)
        assert controller.on_block(block_exec(), 0.0) == 0.0
        assert core.states.vpu_on is True
        cycles = controller.on_block(block_exec(), 2000.0)
        assert core.states.vpu_on is False
        assert cycles == SERVER.vpu_switch_cycles + SERVER.vpu_save_restore_cycles
        assert controller.gate_offs == 1

    def test_stays_on_with_frequent_vector_ops(self):
        controller, core = make_controller(timeout=1000)
        for now in range(0, 10_000, 500):  # vector op every 500 cycles
            controller.on_block(block_exec(vector=1), float(now))
        assert core.states.vpu_on is True
        assert controller.gate_offs == 0

    def test_reactive_wakeup_on_vector_op(self):
        controller, core = make_controller(timeout=1000)
        controller.on_block(block_exec(), 5000.0)  # idle -> gated off
        assert core.states.vpu_on is False
        cycles = controller.on_block(block_exec(vector=2), 6000.0)
        assert core.states.vpu_on is True
        assert cycles > 0
        assert controller.gate_ons == 1

    def test_wakeup_precedes_execution(self):
        """A vector block arriving at a gated VPU must execute natively."""
        controller, core = make_controller(timeout=100)
        controller.on_block(block_exec(), 1_000.0)
        assert core.states.vpu_on is False
        exec_ = block_exec(vector=1)
        controller.on_block(exec_, 2_000.0)
        core.execute_block(exec_, interpreting=False)
        assert core.vpu.emulated_ops == 0  # never emulated under timeout
        assert core.vpu.native_ops == 1

    def test_no_gating_before_timeout(self):
        controller, core = make_controller(timeout=10_000)
        controller.on_block(block_exec(), 5_000.0)
        assert core.states.vpu_on is True

    def test_validation(self):
        core = CoreModel(SERVER)
        with pytest.raises(ValueError):
            TimeoutVPUController(SERVER, core, timeout_cycles=0)
