"""Tests for result records and comparison metrics."""

import pytest

from repro.power.accounting import EnergyReport
from repro.sim.results import (
    SimulationResult,
    energy_reduction,
    leakage_reduction,
    power_reduction,
    slowdown,
)


def report(leakage=1.0, dynamic=1.0, seconds=1.0, switch=0.0):
    return EnergyReport(
        cycles=seconds * 1e9,
        seconds=seconds,
        leakage_j=leakage,
        dynamic_j=dynamic,
        switch_overhead_j=switch,
        unit_leakage_j={},
        unit_dynamic_j={},
        vpu_on_frac=1.0,
        bpu_on_frac=1.0,
        mlc_way_residency={8: 1.0},
    )


def result(cycles=1000.0, instructions=1000, energy=None, **kwargs):
    return SimulationResult(
        benchmark="bench",
        suite="test",
        design="server",
        mode="full",
        cycles=cycles,
        instructions=instructions,
        energy=energy or report(),
        **kwargs,
    )


class TestSimulationResult:
    def test_ipc(self):
        assert result(cycles=500.0, instructions=1000).ipc == 2.0
        assert result(cycles=0.0).ipc == 0.0

    def test_mispredict_rate(self):
        r = result(branches=100, mispredicts=7)
        assert r.mispredict_rate == pytest.approx(0.07)
        assert result().mispredict_rate == 0.0

    def test_mlc_hit_rate(self):
        r = result(mlc_hits=30, mlc_misses=70)
        assert r.mlc_hit_rate == pytest.approx(0.3)

    def test_pvt_miss_rate(self):
        r = result(pvt_misses=5, translation_executions=1000)
        assert r.pvt_miss_rate_per_translation == pytest.approx(0.005)
        assert result().pvt_miss_rate_per_translation == 0.0

    def test_switches_per_million_cycles(self):
        r = result(cycles=2_000_000.0, switch_counts={"vpu": 4})
        assert r.switches_per_million_cycles("vpu") == pytest.approx(2.0)
        assert r.switches_per_million_cycles("mlc") == 0.0


class TestComparisons:
    def test_slowdown(self):
        base = result(cycles=1000.0)
        other = result(cycles=1100.0)
        assert slowdown(base, other) == pytest.approx(0.10)

    def test_power_reduction(self):
        base = result(energy=report(leakage=2.0, dynamic=2.0))
        other = result(energy=report(leakage=1.0, dynamic=1.0))
        assert power_reduction(base, other) == pytest.approx(0.5)

    def test_energy_reduction_accounts_for_time(self):
        base = result(energy=report(leakage=1.0, dynamic=1.0, seconds=1.0))
        # Same power, 10% longer -> 10% more energy -> negative reduction.
        other = result(
            cycles=1100.0, energy=report(leakage=1.1, dynamic=1.1, seconds=1.1)
        )
        assert energy_reduction(base, other) == pytest.approx(-0.1)

    def test_leakage_reduction(self):
        base = result(energy=report(leakage=2.0))
        other = result(energy=report(leakage=1.5))
        assert leakage_reduction(base, other) == pytest.approx(0.25)

    def test_mismatched_workloads_rejected(self):
        base = result()
        other = result()
        other.benchmark = "other"
        with pytest.raises(ValueError):
            slowdown(base, other)

    def test_switch_overhead_in_total(self):
        r = report(leakage=1.0, dynamic=1.0, switch=0.5)
        assert r.total_j == pytest.approx(2.5)
        assert r.avg_power_w == pytest.approx(2.5)
