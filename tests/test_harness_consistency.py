"""Consistency checks across the experiment harness and benchmarks."""

import pathlib
import re

from repro.experiments import PAPER_CLAIMS


REPO = pathlib.Path(__file__).resolve().parent.parent


class TestExperimentRegistry:
    def test_every_experiment_module_has_a_claim(self):
        exp_dir = REPO / "src" / "repro" / "experiments"
        modules = {
            p.stem
            for p in exp_dir.glob("*.py")
            if p.stem not in ("__init__", "common", "unit_activity", "headline")
        }
        # unit_activity provides fig09+fig10; headline provides "headline".
        ids = set(PAPER_CLAIMS)
        for module in modules:
            assert any(
                module.startswith(eid) or eid.startswith(module.split("_")[0])
                for eid in ids
            ), f"{module} has no paper claim registered"

    def test_claims_cover_benchmark_suite(self):
        """Every experiment id the benchmarks render must have a claim, so
        EXPERIMENTS.md generation never falls back to a placeholder."""
        bench_dir = REPO / "benchmarks"
        text = "\n".join(
            p.read_text() for p in bench_dir.glob("test_*.py")
        )
        used_modules = set(re.findall(r"once\((\w+)[.,]", text))
        # Module-level runners map to experiment ids via their run() output;
        # spot-check the known mapping is complete.
        for eid in (
            "fig01", "fig02", "fig03", "fig08", "fig09", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig16", "table1",
            "table_hwcost", "table_sw_cost", "table_sensitivity",
            "table_timeout_sweep", "table_thresholds", "table_drowsy",
            "headline",
        ):
            assert eid in PAPER_CLAIMS

    def test_design_doc_mentions_every_figure(self):
        design = (REPO / "DESIGN.md").read_text()
        for fig in range(8, 17):
            assert f"Fig. {fig}" in design or f"fig{fig:02d}" in design

    def test_claims_are_nonempty_strings(self):
        for eid, claim in PAPER_CLAIMS.items():
            assert isinstance(claim, str) and len(claim) > 10, eid


class TestRepositoryHygiene:
    def test_all_source_modules_have_docstrings(self):
        src = REPO / "src" / "repro"
        for path in src.rglob("*.py"):
            text = path.read_text().lstrip()
            assert text.startswith('"""') or text.startswith("'''"), (
                f"{path} lacks a module docstring"
            )

    def test_no_print_statements_in_library(self):
        """The library must be silent; printing belongs to examples/CLI."""
        import ast

        src = REPO / "src" / "repro"
        offenders = []
        for path in src.rglob("*.py"):
            if path.name == "__main__.py":
                continue
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"
                ):
                    offenders.append(f"{path}:{node.lineno}")
        assert not offenders, offenders

    def test_examples_are_executable_scripts(self):
        for path in (REPO / "examples").glob("*.py"):
            text = path.read_text()
            assert text.startswith("#!/usr/bin/env python3"), path
            assert 'if __name__ == "__main__":' in text, path
