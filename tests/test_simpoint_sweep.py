"""Tests for SimPoint region selection and parameter sweeps."""

import pytest

from repro.sim.simpoint import select_simpoints
from repro.sim.sweep import (
    sweep_powerchop_thresholds,
    sweep_signature_lengths,
    sweep_timeout_periods,
    sweep_window_sizes,
)
from repro.uarch.config import SERVER
from repro.workloads.profiles import build_workload


class TestSimPoint:
    def test_weights_sum_to_one(self, tiny_profile):
        workload = build_workload(tiny_profile)
        simpoints = select_simpoints(
            workload, interval_instructions=20_000, max_instructions=300_000, k=3
        )
        assert simpoints
        assert sum(sp.weight for sp in simpoints) == pytest.approx(1.0)

    def test_representatives_in_range(self, tiny_profile):
        workload = build_workload(tiny_profile)
        simpoints = select_simpoints(
            workload, interval_instructions=20_000, max_instructions=200_000, k=2
        )
        n_intervals = 200_000 // 20_000
        for sp in simpoints:
            assert 0 <= sp.interval_index <= n_intervals
            assert sp.start_instruction == sp.interval_index * 20_000

    def test_phased_workload_yields_multiple_clusters(self, tiny_profile):
        workload = build_workload(tiny_profile)
        simpoints = select_simpoints(
            workload, interval_instructions=25_000, max_instructions=400_000, k=4
        )
        assert len(simpoints) >= 2  # two phases -> at least two clusters

    def test_deterministic(self, tiny_profile):
        a = select_simpoints(build_workload(tiny_profile), 20_000, 200_000, k=3)
        b = select_simpoints(build_workload(tiny_profile), 20_000, 200_000, k=3)
        assert a == b

    def test_validation(self, tiny_profile):
        workload = build_workload(tiny_profile)
        with pytest.raises(ValueError):
            select_simpoints(workload, 0)


class TestSweeps:
    def test_threshold_sweep_monotone_gating(self, tiny_profile):
        records = sweep_powerchop_thresholds(
            SERVER, tiny_profile, (0.0001, 0.9), max_instructions=250_000
        )
        assert len(records) == 2
        # A near-1.0 threshold must gate the VPU at least as much as a
        # near-zero threshold.
        assert records[1]["vpu_gated_frac"] >= records[0]["vpu_gated_frac"]

    def test_window_sweep_records_miss_rate(self, tiny_profile):
        records = sweep_window_sizes(
            SERVER, tiny_profile, (100, 400), max_instructions=200_000
        )
        assert all("pvt_miss_rate" in r for r in records)

    def test_signature_sweep(self, tiny_profile):
        records = sweep_signature_lengths(
            SERVER, tiny_profile, (2, 4), max_instructions=200_000
        )
        assert [r["label"] for r in records] == [
            "signature_length=2",
            "signature_length=4",
        ]

    def test_timeout_sweep_gating_decreases_with_period(self, tiny_profile):
        records = sweep_timeout_periods(
            SERVER, tiny_profile, (500.0, 500_000.0), max_instructions=250_000
        )
        assert records[0]["vpu_gated_frac"] >= records[1]["vpu_gated_frac"]
