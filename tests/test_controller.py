"""Tests for the PowerChop controller (HTB/PVT/CDE glue)."""

import pytest

from repro.bt.nucleus import Nucleus
from repro.bt.region_cache import Translation
from repro.core.config import PowerChopConfig
from repro.core.controller import PowerChopController
from repro.core.policies import PolicyVector, min_power_policy
from repro.power.accounting import EnergyAccounting
from repro.uarch.config import SERVER
from repro.uarch.core import CoreModel


def make_controller(window_size=5, warmup=0, managed=("vpu", "bpu", "mlc")):
    core = CoreModel(SERVER)
    nucleus = Nucleus()
    accountant = EnergyAccounting(SERVER, core)
    config = PowerChopConfig(
        window_size=window_size,
        warmup_windows=warmup,
        managed_units=managed,
        collect_phase_vectors=True,
    )
    controller = PowerChopController(config, SERVER, core, nucleus, accountant)
    return controller, core, nucleus


def translation(tid, n_instr=20):
    return Translation(tid, (tid,), n_instr, 0, 0)


class TestWindowing:
    def test_window_boundary_triggers_lookup(self):
        controller, _core, _nucleus = make_controller(window_size=3)
        t = translation(0x100)
        controller.on_translation_entry(t, 0.0)
        controller.on_translation_entry(t, 10.0)
        assert controller.pvt.lookups == 0
        controller.on_translation_entry(t, 20.0)
        assert controller.windows_seen == 1
        assert controller.pvt.lookups == 1

    def test_warmup_windows_skip_decisions(self):
        controller, _core, _nucleus = make_controller(window_size=2, warmup=2)
        t = translation(0x100)
        for i in range(4):  # two full windows, both inside warmup
            controller.on_translation_entry(t, float(i))
        assert controller.windows_seen == 2
        assert controller.pvt.lookups == 0
        assert controller.cde.invocations == 0

    def test_phase_log_collected(self):
        controller, _core, _nucleus = make_controller(window_size=2)
        t = translation(0x200)
        controller.on_translation_entry(t, 0.0)
        controller.on_translation_entry(t, 1.0)
        assert controller.phase_log == [((0x200,), {0x200: 2})]


class TestPolicyApplication:
    def test_apply_policy_gates_units_with_penalties(self):
        controller, core, _nucleus = make_controller()
        policy = min_power_policy(SERVER)
        cycles = controller._apply_policy(policy, 100.0)
        assert core.states.vpu_on is False
        assert core.states.bpu_large_on is False
        assert core.states.mlc_ways == 1
        expected_min = (
            SERVER.vpu_switch_cycles
            + SERVER.vpu_save_restore_cycles
            + SERVER.bpu_switch_cycles
            + SERVER.mlc_switch_cycles
        )
        assert cycles >= expected_min

    def test_noop_policy_costs_nothing(self):
        controller, core, _nucleus = make_controller()
        policy = PolicyVector(True, True, SERVER.mlc_assoc)
        assert controller._apply_policy(policy, 0.0) == 0.0

    def test_switch_counts_recorded(self):
        controller, _core, _nucleus = make_controller()
        controller._apply_policy(min_power_policy(SERVER), 0.0)
        counts = controller.accountant.switch_counts
        assert counts == {"vpu": 1, "bpu": 1, "mlc": 1}

    def test_mlc_downsize_charges_writebacks(self):
        controller, core, _nucleus = make_controller()
        for i in range(8000):
            core.hierarchy.mlc.access(i * 64, is_write=True)
        cycles = controller._apply_policy(PolicyVector(True, True, 1), 0.0)
        assert cycles > SERVER.mlc_switch_cycles  # dirty WB cost added


class TestMissPath:
    def _drive_window(self, controller, tid, now):
        for i in range(controller.config.window_size):
            now += 1.0
            controller.on_translation_entry(translation(tid), now)
        return now

    def test_profiling_lifecycle(self):
        controller, core, _nucleus = make_controller(window_size=4)
        now = self._drive_window(controller, 0x100, 0.0)  # window 1: miss
        assert controller.cde.new_phases == 1
        assert controller._measuring == ((0x100,))
        # Window 2 measures with large BPU; window 3 with small.
        now = self._drive_window(controller, 0x100, now)
        now = self._drive_window(controller, 0x100, now)
        now = self._drive_window(controller, 0x100, now)
        assert controller.cde.policies_assigned >= 1
        assert controller.pvt.hits >= 1  # subsequent windows hit

    def test_measurement_routes_small_without_gating(self):
        controller, core, _nucleus = make_controller(window_size=4)
        now = self._drive_window(controller, 0x100, 0.0)
        now = self._drive_window(controller, 0x100, now)
        # After the first measured window the CDE arms the small-BPU window.
        assert core.bpu.force_small is True
        assert core.bpu.large_on is True  # not power gated for measurement

    def test_interrupt_cost_charged(self):
        controller, _core, nucleus = make_controller(window_size=2)
        controller.on_translation_entry(translation(0x1), 0.0)
        controller.on_translation_entry(translation(0x1), 1.0)
        assert nucleus.counts.get("pvt_miss") == 1
        assert nucleus.cycles >= controller.config.cde_interrupt_cycles

    def test_miss_rate_stat(self):
        controller, _core, _nucleus = make_controller(window_size=2)
        controller.on_translation_entry(translation(0x1), 0.0)
        controller.on_translation_entry(translation(0x1), 1.0)
        assert controller.pvt_miss_rate_per_translation == pytest.approx(0.5)
