"""Tracer unit tests: levels, ring buffer, drop counter, event schema."""

import pytest

from repro.obs.events import (
    PAYLOAD_FIELDS,
    EventKind,
    TraceEvent,
    event_to_jsonable,
)
from repro.obs.tracer import DEFAULT_CAPACITY, NULL_TRACER, OBS_LEVELS, Tracer


class TestLevels:
    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="obs_level"):
            Tracer("verbose")

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer("full", capacity=0)

    @pytest.mark.parametrize(
        "level,active,metrics_on",
        [("off", False, False), ("metrics", False, True), ("full", True, True)],
    )
    def test_level_flags(self, level, active, metrics_on):
        tracer = Tracer(level)
        assert tracer.active is active
        assert tracer.metrics_on is metrics_on

    def test_levels_constant_covers_all(self):
        assert OBS_LEVELS == ("off", "metrics", "full")

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.active is False
        assert NULL_TRACER.metrics_on is False
        assert len(NULL_TRACER) == 0

    def test_default_capacity(self):
        assert Tracer("full").capacity == DEFAULT_CAPACITY


class TestRingBuffer:
    def test_appends_until_capacity(self):
        tracer = Tracer("full", capacity=4)
        for i in range(3):
            tracer.emit(EventKind.PVT_HIT, float(i), {"signature": (i,)})
        assert len(tracer) == 3
        assert tracer.emitted == 3
        assert tracer.dropped == 0
        assert [event.ts for event in tracer.events()] == [0.0, 1.0, 2.0]

    def test_overwrites_oldest_when_full(self):
        tracer = Tracer("full", capacity=4)
        for i in range(7):
            tracer.emit(EventKind.PVT_HIT, float(i), {"signature": (i,)})
        assert len(tracer) == 4
        assert tracer.emitted == 7
        assert tracer.dropped == 3
        # Oldest-first order survives the wrap.
        assert [event.ts for event in tracer.events()] == [3.0, 4.0, 5.0, 6.0]

    def test_events_returns_copy(self):
        tracer = Tracer("full", capacity=4)
        tracer.emit(EventKind.PVT_MISS, 1.0, {"signature": (1,)})
        events = tracer.events()
        events.clear()
        assert len(tracer) == 1


class TestEventSchema:
    def test_every_kind_has_documented_payload(self):
        assert set(PAYLOAD_FIELDS) == set(EventKind)

    def test_event_to_jsonable_converts_tuples(self):
        event = TraceEvent(
            12.5, EventKind.PHASE_ENTER, {"signature": (1, 2, 3), "window": 4}
        )
        data = event_to_jsonable(event)
        assert data == {
            "ts": 12.5,
            "kind": "phase_enter",
            "payload": {"signature": [1, 2, 3], "window": 4},
        }

    def test_kind_values_are_stable_strings(self):
        # Golden fixtures serialise kinds by value; renaming one silently
        # invalidates every checked-in golden, so pin the full mapping.
        assert {kind.value for kind in EventKind} == {
            "phase_enter",
            "phase_exit",
            "htb_promote",
            "htb_evict",
            "pvt_hit",
            "pvt_miss",
            "policy_decision",
            "unit_gate",
            "unit_regate",
            "translation_start",
            "translation_commit",
            "wayback_writeback",
        }
