"""Exporter tests: Chrome trace structure, gating timelines, the trace CLI."""

import json
from collections import defaultdict

import pytest

from repro.obs.events import EventKind, TraceEvent
from repro.obs.export import (
    TRACKS,
    chrome_trace,
    gating_intervals,
    render_timeline,
    trace_to_jsonable,
)
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import SERVER
from repro.workloads.profiles import build_workload


@pytest.fixture
def traced_run(tiny_profile, quick_config):
    simulator = HybridSimulator(
        SERVER,
        build_workload(tiny_profile),
        GatingMode.POWERCHOP,
        powerchop_config=quick_config,
        obs_level="full",
    )
    simulator.run(120_000)
    return simulator


def _build_trace(simulator, **overrides):
    kwargs = dict(
        frequency_hz=simulator.design.frequency_hz,
        end_cycles=simulator.cycles,
        mlc_full_ways=simulator.design.mlc_assoc,
        benchmark=simulator.workload.name,
        design=simulator.design.name,
        dropped=simulator.tracer.dropped,
    )
    kwargs.update(overrides)
    return chrome_trace(simulator.tracer.events(), **kwargs)


def _assert_structurally_valid(trace):
    """The ISSUE's structural-validity contract for Chrome traces."""
    assert isinstance(trace["traceEvents"], list)
    last_ts = defaultdict(lambda: float("-inf"))
    open_depth = defaultdict(int)
    for event in trace["traceEvents"]:
        assert {"name", "ph", "pid", "tid"} <= set(event)
        if event["ph"] == "M":
            continue
        track = (event["pid"], event["tid"])
        assert event["ts"] >= last_ts[track], f"ts regressed on track {track}"
        last_ts[track] = event["ts"]
        if event["ph"] == "B":
            open_depth[track] += 1
        elif event["ph"] == "E":
            open_depth[track] -= 1
            assert open_depth[track] >= 0, f"E without B on track {track}"
    assert all(depth == 0 for depth in open_depth.values()), "unclosed B slices"


class TestChromeTrace:
    def test_structure(self, traced_run):
        trace = _build_trace(traced_run)
        _assert_structurally_valid(trace)
        assert trace["displayTimeUnit"] == "ms"
        assert trace["otherData"]["benchmark"] == "tiny"
        # Real runs emit actual content, not just metadata.
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert "B" in phases and "E" in phases and "i" in phases

    def test_json_serialisable(self, traced_run):
        json.dumps(_build_trace(traced_run))

    def test_track_metadata_present(self, traced_run):
        trace = _build_trace(traced_run)
        names = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert names == set(TRACKS)

    def test_valid_under_ring_truncation(self, tiny_profile, quick_config):
        """A trace whose B events were dropped must still be well-formed."""
        simulator = HybridSimulator(
            SERVER,
            build_workload(tiny_profile),
            GatingMode.POWERCHOP,
            powerchop_config=quick_config,
            obs_level="full",
            obs_capacity=16,
        )
        simulator.run(120_000)
        assert simulator.tracer.dropped > 0
        trace = _build_trace(simulator)
        _assert_structurally_valid(trace)
        assert trace["otherData"]["events_dropped"] == simulator.tracer.dropped

    def test_timestamps_scaled_to_microseconds(self, traced_run):
        trace = _build_trace(traced_run)
        scale = 1e6 / traced_run.design.frequency_hz
        bounded = traced_run.cycles * scale + 1e-9
        for event in trace["traceEvents"]:
            if event["ph"] != "M":
                assert 0.0 <= event["ts"] <= bounded


class TestGatingIntervals:
    def _gate(self, ts, unit, frm, to, cost):
        kind = (
            EventKind.UNIT_GATE
            if (to < frm if unit == "mlc" else frm and not to)
            else EventKind.UNIT_REGATE
        )
        return TraceEvent(
            ts, kind, {"unit": unit, "from": frm, "to": to, "cost_cycles": cost}
        )

    def test_reconstruction(self):
        events = [
            self._gate(100.0, "vpu", 1, 0, 530.0),
            self._gate(400.0, "vpu", 0, 1, 530.0),
            self._gate(250.0, "mlc", 8, 2, 64.0),
        ]
        events.sort(key=lambda event: event.ts)
        intervals = gating_intervals(events, 1000.0)
        assert ("vpu", 0.0, 100.0, "on", 0.0) in intervals
        assert ("vpu", 100.0, 400.0, "gated", 530.0) in intervals
        assert ("vpu", 400.0, 1000.0, "on", 530.0) in intervals
        assert ("mlc", 0.0, 250.0, "full", 0.0) in intervals
        assert ("mlc", 250.0, 1000.0, "ways=2", 64.0) in intervals
        # Unmanaged unit: one full-run interval in its initial state.
        assert ("bpu", 0.0, 1000.0, "on", 0.0) in intervals

    def test_intervals_tile_the_run(self, traced_run):
        intervals = gating_intervals(traced_run.tracer.events(), traced_run.cycles)
        by_unit = defaultdict(list)
        for unit, start, stop, _state, _cost in intervals:
            by_unit[unit].append((start, stop))
        for unit, spans in by_unit.items():
            assert spans[0][0] == 0.0
            assert spans[-1][1] == traced_run.cycles
            for (_, prev_stop), (next_start, _) in zip(spans, spans[1:]):
                assert prev_stop == next_start, f"gap in {unit} timeline"

    def test_render_text(self):
        intervals = [("vpu", 0.0, 100.0, "on", 0.0)]
        text = render_timeline(intervals)
        lines = text.splitlines()
        assert lines[0].split() == [
            "unit", "start_cycles", "end_cycles", "state", "entry_cost_cycles",
        ]
        assert "vpu" in lines[2]

    def test_render_csv(self):
        import csv
        import io

        intervals = [("mlc", 0.0, 64.5, "ways=2", 128.0)]
        rows = list(csv.reader(io.StringIO(render_timeline(intervals, fmt="csv"))))
        assert rows[0][0] == "unit"
        assert rows[1] == ["mlc", "0.0", "64.5", "ways=2", "128.0"]

    def test_render_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="timeline format"):
            render_timeline([], fmt="yaml")

    def test_trace_to_jsonable(self, traced_run):
        json.dumps(trace_to_jsonable(traced_run.tracer.events()))


class TestTraceCommand:
    def test_writes_trace_and_timeline(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "trace.json"
        timeline = tmp_path / "timeline.csv"
        code = main(
            [
                "trace",
                "bzip2",
                "-n",
                "150000",
                "-s",
                "7",
                "--out",
                str(out),
                "--timeline",
                str(timeline),
            ]
        )
        assert code == 0
        trace = json.loads(out.read_text())
        _assert_structurally_valid(trace)
        assert timeline.read_text().startswith("unit,start_cycles")
        assert "perfetto" in capsys.readouterr().out
