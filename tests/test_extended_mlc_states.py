"""Tests for the extended 4-state MLC gating policy (§IV-B3 extension)."""

from repro.core.config import PowerChopConfig
from repro.core.criticality import (
    CriticalityScores,
    CriticalityThresholds,
    decide_policy,
)
from repro.sim.simulator import GatingMode, run_simulation
from repro.uarch.config import SERVER
from repro.workloads.generator import MemoryBehavior
from repro.workloads.mixes import PREDICTABLE
from repro.workloads.profiles import BenchmarkProfile, PhaseDecl, RegionSpec


class TestStates:
    def test_extended_states_ordering(self):
        states = SERVER.mlc_way_states_extended
        assert states == (1, 2, 4, 8)
        assert list(states) == sorted(states)

    def test_mid_threshold_between_low_and_high(self):
        thresholds = CriticalityThresholds()
        assert thresholds.mlc_low < thresholds.mlc_mid < thresholds.mlc_high


class TestDecision:
    thresholds = CriticalityThresholds(mlc_high=0.01, mlc_low=0.001)

    def _decide(self, mlc, extended):
        scores = CriticalityScores(vpu=1.0, bpu=1.0, mlc=mlc)
        return decide_policy(
            scores, self.thresholds, SERVER, ("mlc",),
            extended_mlc_states=extended,
        )

    def test_quarter_band_only_when_extended(self):
        mid = self.thresholds.mlc_mid
        below_mid = mid * 0.8
        assert self._decide(below_mid, extended=False).mlc_ways == 4
        assert self._decide(below_mid, extended=True).mlc_ways == 2

    def test_other_bands_unchanged(self):
        for extended in (False, True):
            assert self._decide(0.05, extended).mlc_ways == 8
            assert self._decide(0.0005, extended).mlc_ways == 1
        assert self._decide(0.008, True).mlc_ways == 4  # above mid


class TestEndToEnd:
    def test_extended_run_uses_quarter_state(self):
        """A phase with moderate MLC criticality lands in the quarter band."""
        profile = BenchmarkProfile(
            name="midband",
            suite="test",
            phases=(
                PhaseDecl(
                    name="p",
                    region=RegionSpec(
                        n_blocks=10, branch_mix=PREDICTABLE, mem_frac=0.10
                    ),
                    # Small random working set: a trickle of MLC hits.
                    memory=MemoryBehavior(working_set_kb=48, pattern="random"),
                    blocks=30_000,
                ),
            ),
            schedule=("p",),
            seed=21,
        )
        config = PowerChopConfig(
            window_size=300,
            warmup_windows=2,
            managed_units=("mlc",),
            extended_mlc_states=True,
        )
        result = run_simulation(
            SERVER,
            profile,
            GatingMode.POWERCHOP,
            max_instructions=400_000,
            powerchop_config=config,
        )
        residency = result.energy.mlc_way_residency
        # Whatever band the measured criticality lands in, the run must be
        # valid; if it used the quarter state it must be a legal state.
        assert all(w in SERVER.mlc_way_states_extended for w in residency)

    def test_extended_flag_defaults_off(self):
        assert PowerChopConfig().extended_mlc_states is False
