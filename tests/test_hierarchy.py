"""Tests for the cache hierarchy and the stream prefetcher."""

import pytest

from repro.uarch.cache.cache import SetAssocCache
from repro.uarch.cache.hierarchy import CacheHierarchy, MemoryLevel
from repro.uarch.cache.prefetch import StreamPrefetcher


def make_hierarchy(llc=True, prefetch=0):
    l1 = SetAssocCache(1, 2, 64, "l1")
    mlc = SetAssocCache(8, 4, 64, "mlc")
    llc_cache = SetAssocCache(64, 8, 64, "llc") if llc else None
    return CacheHierarchy(
        l1, mlc, llc_cache, mlc_latency=10, llc_latency=30, memory_latency=100,
        prefetch_streams=prefetch, prefetch_window=4,
    )


class TestHierarchy:
    def test_cold_miss_goes_to_memory(self):
        hierarchy = make_hierarchy()
        cycles, level = hierarchy.access(0x10000)
        assert level is MemoryLevel.MEMORY
        assert cycles == 100

    def test_l1_hit_free(self):
        hierarchy = make_hierarchy()
        hierarchy.access(0x0)
        cycles, level = hierarchy.access(0x0)
        assert (cycles, level) == (0, MemoryLevel.L1)

    def test_mlc_hit_after_l1_eviction(self):
        hierarchy = make_hierarchy()
        # Touch enough lines to overflow the 1KB L1 but stay in the 8KB MLC.
        for addr in range(0, 4096, 64):
            hierarchy.access(addr)
        cycles, level = hierarchy.access(0x0)
        assert level is MemoryLevel.MLC
        assert cycles == 10

    def test_no_llc_goes_straight_to_memory(self):
        hierarchy = make_hierarchy(llc=False)
        for addr in range(0, 64 * 1024, 64):  # blow out the MLC
            hierarchy.access(addr)
        cycles, level = hierarchy.access(0x0)
        assert level in (MemoryLevel.MEMORY, MemoryLevel.MLC)

    def test_way_gating_reduces_mlc_capacity(self):
        hierarchy = make_hierarchy()
        hierarchy.set_mlc_ways(1)
        assert hierarchy.mlc.active_ways == 1

    def test_level_counts_accumulate(self):
        hierarchy = make_hierarchy()
        for _ in range(5):
            hierarchy.access(0x0)
        assert hierarchy.level_counts[MemoryLevel.L1] == 4


class TestStreamPrefetcher:
    def test_sequential_stream_detected(self):
        prefetcher = StreamPrefetcher(n_streams=2, window=4)
        assert prefetcher.access(100) is False
        assert prefetcher.access(101) is True
        assert prefetcher.access(102) is True
        assert prefetcher.coverage > 0.5

    def test_random_stream_not_covered(self):
        prefetcher = StreamPrefetcher(n_streams=2, window=4)
        hits = sum(prefetcher.access(i * 1000) for i in range(50))
        assert hits == 0

    def test_multiple_interleaved_streams(self):
        prefetcher = StreamPrefetcher(n_streams=4, window=4)
        hits = 0
        for i in range(1, 50):
            hits += prefetcher.access(1000 + i)
            hits += prefetcher.access(90000 + i)
        assert hits >= 90  # both streams tracked simultaneously

    def test_window_bound(self):
        prefetcher = StreamPrefetcher(n_streams=1, window=2)
        prefetcher.access(10)
        assert prefetcher.access(13) is False  # gap of 3 > window 2

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamPrefetcher(0)

    def test_hierarchy_charges_prefetched_latency(self):
        hierarchy = make_hierarchy(llc=False, prefetch=8)
        # Sequential sweep: after the first few lines the stream is covered.
        cycles = [hierarchy.access(addr)[0] for addr in range(0, 64 * 64, 64)]
        assert cycles[0] == 100  # cold, uncovered
        assert cycles[-1] == hierarchy.prefetched_latency
        assert hierarchy.prefetch_covered > 0

    def test_prefetch_disabled(self):
        hierarchy = make_hierarchy(llc=False, prefetch=0)
        cycles = [hierarchy.access(addr)[0] for addr in range(0, 64 * 64, 64)]
        assert all(c == 100 for c in cycles)
