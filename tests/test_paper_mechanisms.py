"""Targeted tests of the paper's named mechanisms, §-by-§.

Each test reproduces, at unit scale, a specific behaviour the paper calls
out in prose — the 'spec sheet' of PowerChop.
"""

from repro.bt.nucleus import Nucleus
from repro.bt.region_cache import Translation
from repro.core.config import PowerChopConfig
from repro.core.controller import PowerChopController
from repro.core.policies import PolicyVector
from repro.power.accounting import EnergyAccounting
from repro.uarch.config import SERVER
from repro.uarch.core import CoreModel


def make_stack(window_size=4, warmup=0, managed=("vpu", "bpu", "mlc")):
    core = CoreModel(SERVER)
    nucleus = Nucleus()
    accountant = EnergyAccounting(SERVER, core)
    config = PowerChopConfig(
        window_size=window_size, warmup_windows=warmup, managed_units=managed
    )
    controller = PowerChopController(config, SERVER, core, nucleus, accountant)
    return controller, core, nucleus


def drive(controller, tids, now=0.0, n_instr=20):
    for tid in tids:
        now += 10.0
        controller.on_translation_entry(Translation(tid, (tid,), n_instr, 0, 0), now)
    return now


class TestSectionIVB:
    """§IV-B: hardware support."""

    def test_phase_edges_trigger_pvt_lookups_every_window(self):
        controller, _core, _nucleus = make_stack(window_size=3)
        drive(controller, [1, 1, 1, 2, 2, 2, 1, 1, 1])
        assert controller.pvt.lookups == 3  # one per completed window

    def test_htb_flushed_between_windows(self):
        controller, _core, _nucleus = make_stack(window_size=2)
        drive(controller, [1, 1])
        assert controller.htb.occupancy == 0

    def test_recurring_phase_hits_pvt_without_cde(self):
        controller, _core, nucleus = make_stack(window_size=2, managed=("vpu",))
        # Window 1: miss, profile; window 2: profiled and registered;
        # windows 3+: hardware-only hits.
        drive(controller, [7, 7] * 6)
        invocations_after_learning = controller.cde.invocations
        drive(controller, [7, 7] * 4, now=1e6)
        assert controller.cde.invocations == invocations_after_learning
        assert controller.pvt.hits >= 4

    def test_distinct_phases_distinct_policies(self):
        controller, core, _nucleus = make_stack(window_size=2, managed=("vpu",))
        vector_translation = Translation(0x10, (0x10,), 20, 10, 0)  # 50% SIMD
        scalar_translation = Translation(0x20, (0x20,), 20, 0, 0)
        now = 0.0
        for _ in range(6):
            # Each phase persists for several consecutive windows so the
            # CDE's forward-scheduled profiling window lands on the same
            # phase (simulating the SIMD commit counters as we go).
            for _entry in range(6):
                now += 10
                core.counters.instructions += 20
                core.counters.simd_instructions += 10
                controller.on_translation_entry(vector_translation, now)
            for _entry in range(6):
                now += 10
                core.counters.instructions += 20
                controller.on_translation_entry(scalar_translation, now)
        vector_policy = controller.cde.known_policy((0x10,))
        scalar_policy = controller.cde.known_policy((0x20,))
        assert vector_policy is not None and vector_policy.vpu_on is True
        assert scalar_policy is not None and scalar_policy.vpu_on is False


class TestSectionIVC:
    """§IV-C: software subsystem."""

    def test_cde_runs_on_nucleus_interrupt_path(self):
        controller, _core, nucleus = make_stack(window_size=2)
        drive(controller, [3, 3])
        assert nucleus.counts["pvt_miss"] == 1
        assert nucleus.cycles >= controller.config.cde_interrupt_cycles

    def test_evicted_phase_reregistered_from_memory(self):
        controller, _core, _nucleus = make_stack(window_size=1, managed=("vpu",))
        # Learn 20 distinct phases; the 16-entry PVT must evict some.
        for tid in range(100, 120):
            drive(controller, [tid, tid, tid])
        assert controller.pvt.evictions > 0
        evicted_before = controller.cde.reregistrations
        # Revisit an early (evicted) phase: re-registration, not re-profiling.
        new_phases_before = controller.cde.new_phases
        drive(controller, [100, 100], now=1e7)
        assert controller.cde.new_phases == new_phases_before
        assert (
            controller.cde.reregistrations > evicted_before
            or controller.pvt.hits > 0
        )


class TestSectionIVD:
    """§IV-D: gating overheads."""

    def test_vpu_transition_pays_save_restore(self):
        controller, _core, _nucleus = make_stack()
        cycles = controller._apply_policy(PolicyVector(False, True, 8), 0.0)
        assert cycles == SERVER.vpu_switch_cycles + SERVER.vpu_save_restore_cycles

    def test_bpu_transition_cheapest(self):
        controller, _core, _nucleus = make_stack()
        bpu_cost = controller._apply_policy(PolicyVector(True, False, 8), 0.0)
        controller2, _core2, _n2 = make_stack()
        mlc_cost = controller2._apply_policy(PolicyVector(True, True, 1), 0.0)
        assert bpu_cost < mlc_cost

    def test_regated_bpu_comes_back_cold(self):
        controller, core, _nucleus = make_stack()
        for i in range(3000):
            core.bpu.predict_and_update(0x40, i % 2 == 0)
        controller._apply_policy(PolicyVector(True, False, 8), 0.0)
        controller._apply_policy(PolicyVector(True, True, 8), 10.0)
        # State was genuinely lost: the (previously learned) alternating
        # branch mispredicts again until retrained.
        mispredicts = 0
        for i in range(20):
            mispredicted, _ = core.bpu.predict_and_update(0x40, i % 2 == 0)
            mispredicts += mispredicted
        assert mispredicts > 0
