"""Tests for criticality scoring and policy decisions (§IV-C2)."""

import pytest

from repro.core.criticality import (
    CriticalityScores,
    CriticalityThresholds,
    bpu_criticality,
    decide_policy,
    mlc_criticality,
    vpu_criticality,
)
from repro.uarch.config import SERVER


class TestScores:
    def test_vpu_ratio(self):
        assert vpu_criticality(50, 1000) == 0.05
        assert vpu_criticality(0, 1000) == 0.0
        assert vpu_criticality(10, 0) == 0.0

    def test_bpu_difference(self):
        assert bpu_criticality(0.10, 0.04) == pytest.approx(0.06)
        assert bpu_criticality(0.05, 0.05) == 0.0
        # The small predictor can even be (noise-level) better.
        assert bpu_criticality(0.04, 0.05) == pytest.approx(-0.01)

    def test_mlc_ratio(self):
        assert mlc_criticality(20, 1000) == 0.02
        assert mlc_criticality(5, 0) == 0.0


class TestThresholds:
    def test_defaults_ordered(self):
        thresholds = CriticalityThresholds()
        assert thresholds.mlc_low <= thresholds.mlc_high

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            CriticalityThresholds(mlc_high=0.001, mlc_low=0.01)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CriticalityThresholds(vpu=-0.1)


class TestDecidePolicy:
    thresholds = CriticalityThresholds(vpu=0.01, bpu=0.01, mlc_high=0.01, mlc_low=0.001)

    def _decide(self, vpu=0.0, bpu=0.0, mlc=0.0, managed=("vpu", "bpu", "mlc")):
        scores = CriticalityScores(vpu=vpu, bpu=bpu, mlc=mlc)
        return decide_policy(scores, self.thresholds, SERVER, managed)

    def test_all_noncritical_gates_everything(self):
        policy = self._decide()
        assert policy == type(policy)(vpu_on=False, bpu_on=False, mlc_ways=1)

    def test_all_critical_keeps_everything(self):
        policy = self._decide(vpu=0.2, bpu=0.1, mlc=0.1)
        assert policy.vpu_on and policy.bpu_on and policy.mlc_ways == 8

    def test_vpu_threshold_boundary(self):
        # "fails to exceed" the threshold -> gated off
        assert self._decide(vpu=0.01).vpu_on is False
        assert self._decide(vpu=0.0101).vpu_on is True

    def test_mlc_three_states(self):
        assert self._decide(mlc=0.05).mlc_ways == 8
        assert self._decide(mlc=0.005).mlc_ways == 4  # between thresholds
        assert self._decide(mlc=0.0005).mlc_ways == 1

    def test_unmanaged_units_stay_full(self):
        policy = self._decide(managed=("vpu",))
        assert policy.vpu_on is False
        assert policy.bpu_on is True
        assert policy.mlc_ways == 8

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError):
            self._decide(managed=("gpu",))

    def test_negative_bpu_criticality_gates(self):
        assert self._decide(bpu=-0.02).bpu_on is False
