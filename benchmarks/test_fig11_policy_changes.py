"""Figure 11: frequency of gating state changes."""

from repro.experiments import fig11_policy_changes


def test_fig11_switching_is_phase_grained(once):
    result = once(fig11_policy_changes.run)
    summary = result.summary
    # Paper: BPU < 50, VPU < 10, MLC < 5 switches per million cycles.
    assert summary["mean_bpu"] < 50.0
    assert summary["mean_vpu"] < 10.0
    assert summary["mean_mlc"] < 8.0
    # Ordering: the BPU (cheapest to switch) changes most often.
    assert summary["mean_bpu"] >= summary["mean_mlc"]
