"""Figures 9 and 10: per-unit gating activity (isolation studies)."""

from repro.experiments import unit_activity


def test_fig09_mobile_unit_activity(once):
    result = once(unit_activity.run_mobile)
    summary = result.summary
    # Paper: mobile VPU gated ~90%+, BPU ~40% average, MLC ~20%.
    assert summary["mean_vpu_gated"] > 0.60
    assert summary["mean_bpu_gated"] > 0.25
    assert summary["mean_mlc_gated"] > 0.10


def test_fig10_server_unit_activity(once):
    result = once(unit_activity.run_server)
    summary = result.summary
    # Paper: VPU gated ~90% for most SPEC-INT (high overall), BPU usually
    # needed on the server (gated less than the VPU), MLC gated on the
    # streaming subset.
    assert summary["mean_vpu_gated"] > 0.35
    assert summary["mean_mlc_gated"] > 0.08
    assert summary["mean_vpu_gated"] > summary["mean_bpu_gated"]

    rows = {row[0]: row for row in result.rows}
    # Named behaviours from the paper's text:
    vpu_of = lambda name: float(rows[name][1].rstrip("%")) / 100
    mlc_of = lambda name: float(rows[name][3].rstrip("%")) / 100
    assert vpu_of("namd") > 0.6  # "VPU gated off above 90% ... for namd"
    # dedup's phases are ~1M instructions each, so a half-budget isolation
    # run only sees a couple of recurrences and the warmup prologue weighs
    # heavily; majority gating is the claim that survives compression.
    assert vpu_of("dedup") > 0.4
    assert vpu_of("milc") < 0.2  # dense vector keeps the VPU on
    assert mlc_of("milc") > 0.30  # "1-way for over 40% of the cycles"
    assert mlc_of("streamcluster") > 0.30
