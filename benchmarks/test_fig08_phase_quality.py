"""Figure 8: phase-identification quality across all 29 applications."""

from repro.experiments import fig08_phase_quality


def test_fig08_same_signature_windows_execute_same_code(once):
    result = once(fig08_phase_quality.run)
    summary = result.summary
    # Paper: mean 2.8% Manhattan distance, max 6.8%.  Our compressed phases
    # admit somewhat more straddle noise; the qualitative claim is that
    # same-signature windows execute overwhelmingly identical code.
    assert summary["mean_distance_frac"] < 0.10
    assert summary["max_distance_frac"] < 0.35
