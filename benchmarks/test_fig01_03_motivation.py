"""Figures 1-3: the motivation studies (variable unit criticality)."""

from repro.experiments import fig01_vpu_phases, fig02_bpu_phases, fig03_mlc_phases


def test_fig01_vpu_intensity_varies(once):
    result = once(fig01_vpu_phases.run)
    summary = result.summary
    # Paper shape: gobmk has both quiet and vector-busy stretches.
    assert summary["quiet_frac"] > 0.3
    assert summary["busy_frac"] > 0.02
    assert summary["peak_intensity"] > 0.05


def test_fig02_large_bpu_benefit_is_phasic(once):
    result = once(fig02_bpu_phases.run)
    summary = result.summary
    # The tournament helps overall...
    assert summary["mean_gain"] > 0.01
    # ...but a meaningful fraction of samples see (almost) no benefit.
    assert summary["flat_frac"] > 0.15
    assert summary["helped_frac"] > 0.10


def test_fig03_mlc_benefit_is_phasic(once):
    result = once(fig03_mlc_phases.run)
    summary = result.summary
    # The 8-way MLC wins clearly in resident phases...
    assert summary["helped_frac"] > 0.2
    # ...while streaming phases barely notice 1-way gating.
    assert summary["flat_frac"] > 0.2
    assert summary["mean_gain"] > 0.05
