"""Ablation benches: design-choice sensitivity (DESIGN.md §3, last rows)."""

from repro.experiments import table_sensitivity, table_timeout_sweep


def test_window_and_signature_sensitivity(once):
    result = once(table_sensitivity.run)
    summary = result.summary
    # The paper's chosen point (window=1000, N=4) must save power at a
    # small slowdown on the representative benchmark.
    assert summary["default_window_power_reduction"] > 0.03
    assert summary["default_window_slowdown"] < 0.10


def test_timeout_period_sweep(once):
    result = once(table_timeout_sweep.run)
    summary = result.summary
    # Paper picks 20K cycles: worst-case slowdown under ~5% while still
    # gating the VPU a useful amount on gateable apps.
    assert summary["worst_slowdown_at_20k"] < 0.10
    assert summary["gated_at_20k"] > 0.15
    # Aggressive (short) timeouts must gate at least as much as lax ones.
    gated = [float(row[1].rstrip("%")) / 100 for row in result.rows]
    assert gated[0] >= gated[-1] - 0.02
