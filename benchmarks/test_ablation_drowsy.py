"""Related-work baseline: drowsy MLC vs PowerChop way gating (§VI)."""

from repro.experiments import table_drowsy


def test_drowsy_comparison(once):
    result = once(table_drowsy.run)
    for row in result.rows:
        drowsy_saved = float(row[1].rstrip("%")) / 100
        wake_overhead = float(row[2].rstrip("%")) / 100
        # Drowsy mode always saves substantial MLC leakage but is bounded
        # by the 25% retention floor (max saving 75%)...
        assert 0.05 < drowsy_saved <= 0.7501
        # ...at a small wake cost (charged pessimistically: 1 full stall
        # cycle per wake, no overlap with the MLC access).
        assert wake_overhead < 0.12
