"""Figure 12: full-power vs PowerChop vs minimal-power performance."""

from repro.experiments import fig12_performance


def test_fig12_powerchop_recovers_nearly_all_performance(once):
    result = once(fig12_performance.run)
    summary = result.summary
    pc = summary["mean_powerchop_slowdown"]
    minimal = summary["mean_minimal_slowdown"]
    # Paper: minimal loses ~84%; PowerChop ~2.2%.  Our compressed phase
    # durations inflate PowerChop's reaction overheads somewhat; the shape
    # claim is a huge gap between the two.
    assert pc < 0.08
    assert minimal > 0.20
    assert minimal > 5 * max(pc, 0.005)
