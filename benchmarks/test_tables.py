"""Table I, hardware/software cost tables (§IV-B4, §IV-C3)."""

from repro.experiments import table1_designs, table_hwcost, table_sw_cost


def test_table1_design_points(once):
    result = once(table1_designs.run)
    assert len(result.rows) >= 6


def test_hw_cost_is_negligible(once):
    result = once(table_hwcost.run)
    summary = result.summary
    # Paper: HTB ~0.027W / ~0.008mm2; PVT 264 bytes.  Same order required.
    assert 0.005 < summary["htb_power_w"] < 0.08
    assert 0.002 < summary["htb_area_mm2"] < 0.05
    assert summary["pvt_storage_bytes"] == 264


def test_sw_cost_pvt_misses_are_rare(once):
    result = once(table_sw_cost.run)
    summary = result.summary
    # Paper: 0.017% of translations miss; < 0.5% overhead.  Our phases are
    # ~100x shorter, so the steady-state miss rate is proportionally higher;
    # the claim that survives scaling is that misses are rare and the CDE
    # overhead small.
    assert summary["mean_miss_rate"] < 0.01
    assert summary["mean_cde_overhead"] < 0.03
