"""Ablation: threshold presets (conservative / default / aggressive)."""

from repro.experiments import table_thresholds


def test_threshold_presets_trace_a_frontier(once):
    result = once(table_thresholds.run)
    summary = result.summary
    # More aggressive thresholds must save at least as much power...
    assert (
        summary["aggressive_power_reduction"]
        >= summary["default_power_reduction"] - 0.01
    )
    assert (
        summary["default_power_reduction"]
        >= summary["conservative_power_reduction"] - 0.01
    )
    # ...while the conservative preset protects performance best.
    assert summary["conservative_slowdown"] <= summary["aggressive_slowdown"] + 0.02
