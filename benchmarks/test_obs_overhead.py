"""Observability overhead and full-coverage identity checks (slow).

Two guarantees the tracer design makes:

1. ``obs_level="off"`` costs at most one dead branch per emission site —
   measured directly (guard micro-benchmark) and as end-to-end wall
   clock, the projected overhead must stay under 2 %.
2. Observability never perturbs simulation: off vs full results are
   bit-identical on *all 29* benchmark profiles (tier-1 samples 5; this
   is the exhaustive sweep).
"""

import time
import timeit

import pytest

from repro.core.config import PowerChopConfig
from repro.obs.tracer import NULL_TRACER
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import design_for_suite
from repro.workloads.profiles import build_workload
from repro.workloads.suites import ALL_BENCHMARKS, get_profile

pytestmark = pytest.mark.slow

_QUICK = PowerChopConfig(window_size=100, warmup_windows=1)


def _run(name, obs_level, seed=7, max_instructions=200_000):
    profile = get_profile(name)
    simulator = HybridSimulator(
        design_for_suite(profile.suite),
        build_workload(profile, seed),
        GatingMode.POWERCHOP,
        powerchop_config=_QUICK,
        obs_level=obs_level,
    )
    result = simulator.run(max_instructions)
    return simulator, result


def test_guard_cost_projects_under_two_percent():
    """The one-branch guard, measured, as a fraction of real run time."""
    # Cost of one `if tracer.active:` check (attribute load + branch).
    checks = 1_000_000
    guard_s = timeit.timeit(
        "tracer.active", globals={"tracer": NULL_TRACER}, number=checks
    )
    per_check_s = guard_s / checks

    # A real off-level run, timed, with its dynamic block count.
    start = time.perf_counter()
    simulator, _result = _run("bzip2", "off", max_instructions=1_000_000)
    run_s = time.perf_counter() - start
    # Conservative: charge 8 guard checks to every dynamic block (the
    # instrumented components hold ~6 emission sites between them, and
    # most fire at most once per window, not per block).
    blocks = max(simulator.bt.translated_blocks,
                 simulator.core.counters.instructions // 4)
    projected = blocks * 8 * per_check_s
    overhead = projected / run_s
    print(
        f"\nguard: {per_check_s * 1e9:.1f} ns/check; run {run_s:.2f}s, "
        f"~{blocks:,} blocks -> projected overhead {overhead:.3%}"
    )
    assert overhead < 0.02


def test_off_wallclock_not_slower_than_full():
    """Off-level wall clock sits at (or below) the full-level floor.

    There is no pre-observability binary to diff against, and on shared
    CI machines even two *identical* off-level runs drift 5-15 % apart,
    so an equality assertion here would be pure flake.  The enforceable
    claim is one-sided: "off" does strictly less work than "full", so
    its best-of-N wall clock must not exceed the full-level floor.  The real <2 % bound is pinned by the guard-projection test
    above; the drift between off samples is printed as a diagnostic.
    """
    def timed(obs_level):
        start = time.perf_counter()
        _run("bzip2", obs_level, max_instructions=500_000)
        return time.perf_counter() - start

    timed("off")  # warm caches/imports
    # Interleave samples so machine-load drift hits both levels equally;
    # aggregate with min (the run least disturbed by the environment).
    off, full = [], []
    for _ in range(8):
        off.append(timed("off"))
        off.append(timed("off"))
        full.append(timed("full"))
    spread = (max(off) - min(off)) / min(off)
    print(
        f"\noff floor: {min(off):.3f}s (spread {spread:.2%} over "
        f"{len(off)} samples); full floor: {min(full):.3f}s"
    )
    # 10 % allowance absorbs residual noise in the full-level floor; a
    # regression that made the dead guards cost real time would push the
    # off floor *above* full and trip this.
    assert min(off) <= min(full) * 1.10


def _comparable(result):
    data = result.to_dict()
    data.pop("metrics")
    return data


@pytest.mark.parametrize(
    "profile_name", [p.name for p in ALL_BENCHMARKS]
)
def test_off_vs_full_identity_all_profiles(profile_name):
    """Exhaustive version of tests/test_obs_identity.py's sampled check."""
    _sim_off, off = _run(profile_name, "off", max_instructions=150_000)
    _sim_full, full = _run(profile_name, "full", max_instructions=150_000)
    assert _comparable(off) == _comparable(full)
