"""Figures 15 and 16: the timeout comparison (§V-E)."""

from repro.experiments import fig15_vector_prevalence, fig16_vpu_timeout


def test_fig15_sparse_vector_shards_exist(once):
    result = once(fig15_vector_prevalence.run)
    # Paper shape: several applications have phases whose shards carry a
    # small (0 < V <= 4) number of vector ops.
    assert result.summary["apps_with_sparse_shards"] >= 4


def test_fig16_powerchop_beats_timeout_on_vpu_gating(once):
    result = once(fig16_vpu_timeout.run)
    summary = result.summary
    # Paper: PowerChop gates at least as much as the timeout overall, with
    # dramatic wins on the sparse-vector apps.  (Slack: on compressed runs
    # PowerChop pays a warmup epoch before its first gating decision, while
    # the timeout only waits 20K cycles.)
    assert summary["mean_powerchop_gated"] >= summary["mean_timeout_gated"] - 0.15
    assert summary["big_wins"] >= 2

    rows = {row[0]: row for row in result.rows}
    delta_of = lambda name: float(rows[name][3].rstrip("%").replace("+", "")) / 100
    # namd is the paper's showcase: timeout cannot gate it, PowerChop can.
    assert delta_of("namd") > 0.30
