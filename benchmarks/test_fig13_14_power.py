"""Figures 13 and 14: power, energy and leakage reductions."""

from repro.experiments import fig13_power_energy, fig14_leakage


def test_fig13_power_and_energy_reduction(once):
    result = once(fig13_power_energy.run)
    summary = result.summary
    # Paper: total core power down 6-19% per suite; 13/29 apps above 10%;
    # peaks near 40%; energy reductions slightly smaller than power.
    assert summary["mean_power_reduction"] > 0.05
    assert summary["max_power_reduction"] > 0.20
    assert summary["apps_over_10pct_power"] >= 6
    assert summary["mean_energy_reduction"] > 0.03
    assert summary["mean_energy_reduction"] <= summary["mean_power_reduction"]
    # MobileBench sees the largest reductions (paper: 19% vs 6-10% server).
    assert summary["power_MobileBench"] > summary["power_SPEC-FP"]


def test_fig14_leakage_reduction(once):
    result = once(fig14_leakage.run)
    summary = result.summary
    # Paper: SPEC-INT -23%, SPEC-FP -10%, PARSEC -12%, MobileBench -32%,
    # up to -52% per app.
    assert summary["mean_leakage_reduction"] > 0.08
    assert summary["max_leakage_reduction"] > 0.25
    assert summary["leakage_MobileBench"] > summary["leakage_SPEC-FP"]
    # Directional with slack: our synthetic SPEC-FP gates the MLC harder
    # than the paper's (streaming phases), narrowing the INT-FP gap.
    assert summary["leakage_SPEC-INT"] > summary["leakage_SPEC-FP"] - 0.05
