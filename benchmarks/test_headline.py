"""The abstract's headline claim."""

from repro.experiments import headline


def test_headline_power_reductions(once):
    result = once(headline.run)
    summary = result.summary
    # Paper: server -9% avg (to -33%); mobile -19% avg (to -40%); ~2% slow.
    assert summary["server_mean_power_reduction"] > 0.05
    assert summary["mobile_mean_power_reduction"] > 0.10
    assert summary["mobile_mean_power_reduction"] > summary[
        "server_mean_power_reduction"
    ]
    assert summary["mobile_max_power_reduction"] > 0.25
    assert summary["mean_slowdown"] < 0.06
