#!/usr/bin/env python
"""Regenerate the golden-trace fixtures in tests/goldens/.

Run after an *intentional* change to PowerChop's decision behaviour:

    PYTHONPATH=src python scripts/update_goldens.py

then inspect ``git diff tests/goldens/`` before committing — a golden
that moved unexpectedly is a regression, not a fixture refresh.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.goldens import GOLDEN_SPECS, capture_golden  # noqa: E402


def main() -> int:
    out_dir = REPO_ROOT / "tests" / "goldens"
    out_dir.mkdir(parents=True, exist_ok=True)
    for spec in GOLDEN_SPECS:
        fixture = capture_golden(spec)
        path = out_dir / f"{spec.name}.json"
        path.write_text(json.dumps(fixture, indent=1) + "\n")
        print(f"{path}: {len(fixture['events'])} events")
    return 0


if __name__ == "__main__":
    sys.exit(main())
