#!/usr/bin/env python3
"""Determinism lint: reject nondeterministic randomness and unhashable job specs.

The simulator's reproducibility rests on two conventions:

1. All randomness flows through explicitly seeded generators —
   ``random.Random(seed)`` instances or ``numpy.random.default_rng(seed)``.
   Module-level draws (``random.random()``, ``np.random.rand()``, ...) pull
   from ambient global state and silently break run-to-run determinism,
   so this lint rejects them (rule D001).

2. Cache keys in :mod:`repro.sim.engine` are derived from dataclass field
   values, so the spec classes (``SimJob``, ``ProbeSpec`` and its
   subclasses) must be ``frozen=True`` — a mutable spec could change
   between hashing and execution and poison the result cache (rule D002).

3. Simulation run loops live in :mod:`repro.sim.backends`, where the
   equivalence suite proves them bit-identical to the reference loop.  A
   function elsewhere that both walks ``workload.trace(...)`` *and*
   charges cycles through ``execute_block`` is a forked run loop that the
   suite cannot see, so this lint rejects it (rule D003).  Read-only
   trace scans (statistics, simpoints, trace recording) don't charge
   cycles and stay legal.

4. Inside :mod:`repro.sim.backends`, randomness is pre-materialized by
   :mod:`repro.sim.backends.rngkit` plans that replicate the reference
   loop's draw order exactly.  A backend reaching directly into a
   component's ``random.Random`` (``stream._rng.getrandbits(...)``, a
   bound ``._random`` method) draws outside the plan and silently
   desynchronizes the mirrored streams, so this lint rejects it (rule
   D004) unless the line carries a ``# lint: rng-mirrored`` pragma
   asserting the site replicates the scalar call order.  ``rngkit.py``
   itself is exempt — it is the mirror.

5. Mutable default arguments (``def f(x=[])``) alias one object across
   calls; simulator state leaking through one breaks run-to-run
   determinism in ways no seed controls.  Dataclasses already raise on
   mutable field defaults, so this lint covers plain function and lambda
   parameter defaults: list/dict/set displays and bare ``list()`` /
   ``dict()`` / ``set()`` calls are rejected (rule D005).

Usage:
    python scripts/lint_determinism.py [paths ...]

Defaults to scanning ``src/repro`` and ``scripts``.  Exits non-zero if any
violation is found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

DEFAULT_PATHS = ("src/repro", "scripts")

#: ``random`` module attributes that draw from the global (unseeded) state.
#: ``Random``/``SystemRandom`` construct independent generators and ``seed``
#: is occasionally legitimate in scripts, so only the draw functions count.
_RANDOM_DRAWS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Spec classes whose instances feed the engine's content-hash cache.
_FROZEN_REQUIRED = frozenset({"SimJob", "ProbeSpec"})

#: The one package allowed to implement simulation run loops (rule D003).
_BACKENDS_PACKAGE = "repro/sim/backends"

#: Pragma suppressing D004 on a line that provably mirrors the reference
#: loop's RNG call order (same method, same sequence of draws).
_RNG_PRAGMA = "# lint: rng-mirrored"

#: Default-argument constructors that build a fresh-looking but shared
#: mutable object (rule D005); literals are caught structurally.
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set"})


class Violation(Tuple[str, int, str, str]):
    __slots__ = ()

    def render(self) -> str:
        path, lineno, code, message = self
        return f"{path}:{lineno}: {code} {message}"


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name for an attribute chain (``np.random.rand``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _Linter(ast.NodeVisitor):
    def __init__(
        self, path: str, tree: ast.Module, lines: Tuple[str, ...] = ()
    ) -> None:
        self.path = path
        self.lines = lines
        norm = path.replace("\\", "/")
        self.in_backends = (
            _BACKENDS_PACKAGE in norm and not norm.endswith("/rngkit.py")
        )
        self.violations: List[Violation] = []
        # Names the module binds to the random / numpy.random modules.
        self.random_aliases = {"random"}
        self.np_random_aliases = {"numpy.random"}
        self.numpy_aliases = {"numpy"}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name == "random":
                        self.random_aliases.add(bound)
                    elif alias.name == "numpy":
                        self.numpy_aliases.add(bound)
                    elif alias.name == "numpy.random":
                        self.np_random_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        self.np_random_aliases.add(alias.asname or "random")
        self.np_random_aliases |= {f"{np}.random" for np in self.numpy_aliases}

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(
            Violation((self.path, node.lineno, code, message))
        )

    def _has_rng_pragma(self, node: ast.AST) -> bool:
        lineno = getattr(node, "lineno", 0)
        if 0 < lineno <= len(self.lines):
            return _RNG_PRAGMA in self.lines[lineno - 1]
        return False

    # -- D004: backend RNG draws must go through rngkit mirrors --------

    def _rng_draw_attr(self, node: ast.AST) -> str:
        """Dotted name if ``node`` reaches directly into a Random, else ''.

        Two shapes count: a bound ``._random`` method (AddressStream's
        cached ``Random.random``) and a draw method reached through a
        ``._rng`` attribute chain (``stream._rng.getrandbits``).
        """
        if not isinstance(node, ast.Attribute):
            return ""
        if node.attr == "_random":
            return _dotted(node) or "._random"
        if node.attr in _RANDOM_DRAWS:
            inner = node.value
            while isinstance(inner, ast.Attribute):
                if inner.attr == "_rng":
                    return _dotted(node) or f"._rng.{node.attr}"
                inner = inner.value
        return ""

    def _check_rng_access(self, node: ast.AST) -> None:
        if not self.in_backends:
            return
        name = self._rng_draw_attr(node)
        if name and not self._has_rng_pragma(node):
            self._flag(
                node,
                "D004",
                f"backend reaches directly into a random.Random ('{name}') "
                "outside the rngkit mirror; route the draw through a "
                "rngkit plan, or mark a provably order-preserving site "
                f"with '{_RNG_PRAGMA}'",
            )

    # -- D005: mutable default arguments -------------------------------

    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS
                and not default.args
                and not default.keywords
            )
            if mutable:
                name = getattr(node, "name", "<lambda>")
                self._flag(
                    default,
                    "D005",
                    f"mutable default argument in '{name}' is shared "
                    "across calls and can leak simulator state between "
                    "runs; default to None and construct inside the body",
                )

    # -- D001: unseeded randomness ------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name in _RANDOM_DRAWS:
                    self._flag(
                        node,
                        "D001",
                        f"'from random import {alias.name}' draws from the "
                        "global RNG; use a seeded random.Random instance",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name:
            head, _, tail = name.rpartition(".")
            if head in self.random_aliases and tail in _RANDOM_DRAWS:
                self._flag(
                    node,
                    "D001",
                    f"module-level '{name}()' is unseeded; draw from a "
                    "random.Random(seed) instance instead",
                )
            elif head in self.np_random_aliases and tail != "default_rng":
                self._flag(
                    node,
                    "D001",
                    f"'{name}()' uses numpy's global RNG; use "
                    "numpy.random.default_rng(seed)",
                )
        self._check_rng_access(node.func)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Binding a draw method (``rng = stream._rng.getrandbits``) is the
        # hoisted spelling of a direct draw; D004 applies equally.
        self._check_rng_access(node.value)
        self.generic_visit(node)

    # -- D003: run loops belong in repro.sim.backends -----------------

    def _check_run_loop(self, node) -> None:
        if _BACKENDS_PACKAGE in self.path.replace("\\", "/"):
            return
        walks_trace = False
        charges_cycles = False
        for child in ast.walk(node):
            if child is not node and isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue  # nested defs are visited on their own
            if (
                isinstance(child, ast.For)
                and isinstance(child.iter, ast.Call)
                and isinstance(child.iter.func, ast.Attribute)
                and child.iter.func.attr == "trace"
            ):
                walks_trace = True
            elif isinstance(child, ast.Call):
                name = _dotted(child.func)
                if name.rpartition(".")[2] == "execute_block":
                    charges_cycles = True
        if walks_trace and charges_cycles:
            self._flag(
                node,
                "D003",
                f"function '{node.name}' walks workload.trace() and charges "
                "cycles via execute_block — a simulation run loop; run "
                "loops must live in repro.sim.backends where the "
                "equivalence suite verifies them",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_run_loop(node)
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_run_loop(node)
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- D002: engine spec dataclasses must be frozen -----------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        must_freeze = node.name in _FROZEN_REQUIRED or any(
            base in _FROZEN_REQUIRED
            for base in (_dotted(b).rpartition(".")[2] for b in node.bases)
        )
        if must_freeze:
            decorated = False
            frozen = False
            for deco in node.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                if _dotted(target).rpartition(".")[2] != "dataclass":
                    continue
                decorated = True
                if isinstance(deco, ast.Call):
                    frozen = any(
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                        for kw in deco.keywords
                    )
            if decorated and not frozen:
                self._flag(
                    node,
                    "D002",
                    f"dataclass '{node.name}' feeds the engine result cache "
                    "and must be declared @dataclass(frozen=True)",
                )
        self.generic_visit(node)


def iter_sources(paths: List[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.is_file() and path.suffix == ".py":
            yield path
        else:
            # A typo'd path scanning zero files must not pass silently.
            raise SystemExit(f"determinism lint: no such file or directory: {raw}")


def lint_file(path: Path) -> List[Violation]:
    text = path.read_text()
    tree = ast.parse(text, filename=str(path))
    linter = _Linter(str(path), tree, tuple(text.splitlines()))
    linter.visit(tree)
    return linter.violations


def main(argv: List[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    paths = args or list(DEFAULT_PATHS)
    violations: List[Violation] = []
    n_files = 0
    for source in iter_sources(paths):
        n_files += 1
        violations.extend(lint_file(source))
    for violation in violations:
        print(violation.render())
    status = "FAIL" if violations else "ok"
    print(
        f"determinism lint: {n_files} file(s), "
        f"{len(violations)} violation(s) [{status}]"
    )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
