#!/usr/bin/env python3
"""Simulator throughput benchmark: measure, record, and gate regressions.

Measures M guest-instructions/s per execution backend per gating mode on a
pinned benchmark set (best of ``--repeats`` runs, to damp machine noise)
and maintains ``BENCH_simloop.json`` at the repo root:

- ``--update``  append the measurement as the new ``current`` entry
  (the previous ``current`` is kept in ``history``);
- ``--check``   compare the fresh measurement against the committed
  ``current`` entry and exit non-zero when any backend/mode on any pinned
  profile regressed by more than ``--tolerance`` (default 30 %) — the CI
  perf-smoke gate.  Backends absent from the committed entry are skipped,
  so adding a backend never trips the gate retroactively.

``--backend`` may be given multiple times to measure several backends in
one invocation; rates are recorded per backend
(``rates[backend][profile][mode]``).  Entries written before the backend
registry existed (flat ``rates[profile][mode]``) are read as ``fastpath``
measurements.

``--speedup-floor PROFILE:RATIO`` (repeatable) additionally fails the run
unless the best-mode vectorized-over-fastpath ratio for PROFILE reaches
RATIO — both backends must be measured in the same invocation.
``speedup_vs_previous`` ratios are resolved against the *most recent*
history entry that measured each backend/profile/mode cell, so runs with
differing profile sets never record empty ratio maps.

``--update`` also records a ``walk_memo`` section: pass-A wall-clock on
the ``--memo-profiles`` set (default: dgemm) with and without proof
certificates, plus the memo hit counters — the measured effect of the
walk-trace memoization (``repro.staticcheck.proofs``).  This is recorded,
not gated: memoization only applies to certified-deterministic kernel
profiles.  The ``milc:1.5`` speedup floor in CI is unaffected — milc's
branch models are stochastic, so it never certifies and its vectorized
speedup comes entirely from the batch kernels, proofs or not.

Usage:
    python scripts/bench_throughput.py [--profiles gobmk bzip2]
        [--backend fastpath --backend vectorized]
        [--budget 1000000] [--repeats 3] [--update] [--check]
        [--tolerance 0.30] [--speedup-floor milc:1.5]
        [--output BENCH_simloop.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.sim.backends import available_backends
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import design_for_suite
from repro.workloads.profiles import build_workload
from repro.workloads.suites import get_profile

MODES = (GatingMode.FULL, GatingMode.POWERCHOP, GatingMode.MINIMAL)
DEFAULT_PROFILES = ("gobmk", "bzip2")
DEFAULT_BACKENDS = ("fastpath",)


def measure_once(benchmark: str, budget: int, mode: GatingMode, backend: str) -> float:
    """One timed run; returns guest instructions per second."""
    profile = get_profile(benchmark)
    design = design_for_suite(profile.suite)
    workload = build_workload(profile)
    simulator = HybridSimulator(design, workload, mode, backend=backend)
    start = time.perf_counter()
    result = simulator.run(budget)
    elapsed = time.perf_counter() - start
    return result.instructions / elapsed


def measure(profiles, budget: int, repeats: int, backends) -> dict:
    """Best-of-N throughput (M instr/s): rates[backend][profile][mode]."""
    rates: dict = {}
    for backend in backends:
        rates[backend] = {}
        for name in profiles:
            rates[backend][name] = {}
            for mode in MODES:
                best = max(
                    measure_once(name, budget, mode, backend)
                    for _ in range(repeats)
                )
                rates[backend][name][mode.value] = round(best / 1e6, 3)
                print(
                    f"{backend:10s} {name:14s} {mode.value:10s} "
                    f"{rates[backend][name][mode.value]:6.2f} M guest-instructions/s"
                )
    return rates


def memo_breakdown(benchmark: str, budget: int) -> dict:
    """Pass-A seconds and memo counters, with and without certificates."""
    from repro.staticcheck.proofs import ProofStore

    out: dict = {}
    for tag in ("baseline", "proofs"):
        profile = get_profile(benchmark)
        design = design_for_suite(profile.suite)
        workload = build_workload(profile)
        proofs = (
            ProofStore().get_or_certify(profile, workload=workload)
            if tag == "proofs"
            else None
        )
        simulator = HybridSimulator(
            design,
            workload,
            GatingMode.POWERCHOP,
            backend="vectorized",
            proofs=proofs,
        )
        simulator.run(budget)
        fs = simulator.fastpath_state
        total = fs.pass_a_seconds + fs.pass_b_seconds + fs.scalar_seconds
        out[tag] = {
            "pass_a_seconds": round(fs.pass_a_seconds, 4),
            "pass_a_share": round(fs.pass_a_seconds / total, 3) if total else 0.0,
            "memo_hits": fs.walk_memo_hits,
            "memo_records": fs.walk_memo_records,
            "blocks_replayed": fs.walk_memo_blocks,
        }
    base = out["baseline"]["pass_a_seconds"]
    with_p = out["proofs"]["pass_a_seconds"]
    if with_p:
        out["pass_a_speedup"] = round(base / with_p, 2)
    return out


def normalize_rates(rates: dict) -> dict:
    """Accept both layouts: per-backend, or the flat pre-registry one."""
    if rates and all(key in available_backends() for key in rates):
        return rates
    return {"fastpath": rates}


def load_record(path: Path) -> dict:
    if path.exists():
        return json.loads(path.read_text())
    return {"history": []}


def check_regression(record: dict, rates: dict, tolerance: float) -> int:
    """Compare fresh rates to the committed ``current``; returns exit code."""
    committed = record.get("current")
    if not committed:
        print("no committed entry to compare against; skipping gate")
        return 0
    base_rates = normalize_rates(committed.get("rates", {}))
    floor = 1.0 - tolerance
    failures = []
    for backend, profiles in rates.items():
        base_profiles = base_rates.get(backend)
        if not base_profiles:
            print(f"no committed baseline for backend {backend!r}; skipping")
            continue
        for name, modes in profiles.items():
            base_modes = base_profiles.get(name)
            if not base_modes:
                continue
            for mode_name, rate in modes.items():
                base = base_modes.get(mode_name)
                if base and rate < base * floor:
                    failures.append(
                        f"{backend}/{name}/{mode_name}: {rate:.2f} M/s < "
                        f"{floor:.0%} of committed {base:.2f} M/s"
                    )
    if failures:
        print("throughput regression detected:")
        for line in failures:
            print("  " + line)
        return 1
    print(f"throughput within {tolerance:.0%} of the committed baseline")
    return 0


def speedup_vs_history(rates: dict, history: list) -> dict:
    """Per-cell ratio of ``rates`` to its most recent historical measurement.

    The immediately-previous entry need not cover every backend/profile —
    benchmark runs pick their own ``--profiles``/``--backend`` sets — and a
    naive comparison against only that entry records ``{}`` for any profile
    it skipped.  Walking the history newest-first finds, for every
    backend/profile/mode measured now, the latest entry that also measured
    it, so the ratio is present whenever the cell was ever benchmarked.
    """
    layers = [normalize_rates(e.get("rates", {})) for e in reversed(history) if e]
    speedup: dict = {}
    for backend, profiles in rates.items():
        per_backend: dict = {}
        for name, modes in profiles.items():
            ratios = {}
            for mode_name, rate in modes.items():
                for layer in layers:
                    base = layer.get(backend, {}).get(name, {}).get(mode_name)
                    if base:
                        ratios[mode_name] = round(rate / base, 2)
                        break
            if ratios:
                per_backend[name] = ratios
        if per_backend:
            speedup[backend] = per_backend
    return speedup


def check_speedup_floors(cross: dict, floors) -> int:
    """Gate: best-mode vectorized/fastpath ratio per profile; exit code."""
    failures = []
    for spec in floors:
        name, _, want = spec.partition(":")
        try:
            want_ratio = float(want)
        except ValueError:
            failures.append(f"bad --speedup-floor spec {spec!r} (PROFILE:RATIO)")
            continue
        ratios = cross.get(name)
        if not ratios:
            failures.append(
                f"{name}: no vectorized/fastpath ratio measured "
                "(run with --backend fastpath --backend vectorized)"
            )
            continue
        best = max(ratios.values())
        if best < want_ratio:
            failures.append(
                f"{name}: best vectorized speedup {best:.2f}x < floor "
                f"{want_ratio:.2f}x (per mode: {ratios})"
            )
        else:
            print(f"speedup floor ok: {name} {best:.2f}x >= {want_ratio:.2f}x")
    if failures:
        print("speedup floor violations:")
        for line in failures:
            print("  " + line)
        return 1
    return 0


def cross_backend_speedup(rates: dict) -> dict:
    """vectorized-over-fastpath ratio per profile per mode, when both ran."""
    fast = rates.get("fastpath", {})
    vec = rates.get("vectorized", {})
    speedup: dict = {}
    for name, modes in vec.items():
        base_modes = fast.get(name, {})
        ratios = {
            mode_name: round(rate / base_modes[mode_name], 2)
            for mode_name, rate in modes.items()
            if base_modes.get(mode_name)
        }
        if ratios:
            speedup[name] = ratios
    return speedup


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profiles", nargs="+", default=list(DEFAULT_PROFILES))
    parser.add_argument(
        "--backend",
        action="append",
        choices=available_backends(),
        default=None,
        help="execution backend to measure; repeatable (default: fastpath)",
    )
    parser.add_argument("--budget", type=int, default=1_000_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--update", action="store_true")
    parser.add_argument("--check", action="store_true")
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument(
        "--speedup-floor",
        action="append",
        default=None,
        metavar="PROFILE:RATIO",
        help="fail unless the best-mode vectorized/fastpath ratio for "
        "PROFILE is at least RATIO; repeatable (CI perf-smoke gate)",
    )
    parser.add_argument(
        "--memo-profiles",
        nargs="*",
        default=["dgemm"],
        help="certified-deterministic profiles whose walk-memo pass-A "
        "effect is recorded on --update (default: dgemm; pass no names "
        "to skip)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_simloop.json",
    )
    parser.add_argument("--label", default="")
    args = parser.parse_args()

    backends = args.backend or list(DEFAULT_BACKENDS)
    rates = measure(args.profiles, args.budget, args.repeats, backends)
    record = load_record(args.output)

    exit_code = 0
    if args.check:
        exit_code = check_regression(record, rates, args.tolerance)

    cross = cross_backend_speedup(rates)

    if args.update:
        previous = record.get("current")
        if previous:
            record.setdefault("history", []).append(previous)
        speedup = speedup_vs_history(rates, record.get("history", []))
        record["current"] = {
            "label": args.label or "bench_throughput run",
            "budget": args.budget,
            "repeats": args.repeats,
            "rates": rates,
        }
        if speedup:
            record["current"]["speedup_vs_previous"] = speedup
        if cross:
            record["current"]["vectorized_speedup_vs_fastpath"] = cross
        if args.memo_profiles:
            record["current"]["walk_memo"] = {
                name: memo_breakdown(name, args.budget)
                for name in args.memo_profiles
            }
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.output}")

    if args.speedup_floor:
        floor_code = check_speedup_floors(cross, args.speedup_floor)
        exit_code = exit_code or floor_code

    return exit_code


if __name__ == "__main__":
    sys.exit(main())
