#!/usr/bin/env python3
"""Simulator throughput benchmark: measure, record, and gate regressions.

Measures M guest-instructions/s per gating mode on a pinned benchmark set
(best of ``--repeats`` runs, to damp machine noise) and maintains
``BENCH_simloop.json`` at the repo root:

- ``--update``  append the measurement as the new ``current`` entry
  (the previous ``current`` is kept in ``history``);
- ``--check``   compare the fresh measurement against the committed
  ``current`` entry and exit non-zero when any mode on any pinned profile
  regressed by more than ``--tolerance`` (default 30 %) — the CI
  perf-smoke gate.

Usage:
    python scripts/bench_throughput.py [--profiles gobmk bzip2]
        [--budget 1000000] [--repeats 3] [--update] [--check]
        [--tolerance 0.30] [--output BENCH_simloop.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import design_for_suite
from repro.workloads.profiles import build_workload
from repro.workloads.suites import get_profile

MODES = (GatingMode.FULL, GatingMode.POWERCHOP, GatingMode.MINIMAL)
DEFAULT_PROFILES = ("gobmk", "bzip2")


def measure_once(benchmark: str, budget: int, mode: GatingMode) -> float:
    """One timed run; returns guest instructions per second."""
    profile = get_profile(benchmark)
    design = design_for_suite(profile.suite)
    workload = build_workload(profile)
    simulator = HybridSimulator(design, workload, mode)
    start = time.perf_counter()
    result = simulator.run(budget)
    elapsed = time.perf_counter() - start
    return result.instructions / elapsed


def measure(profiles, budget: int, repeats: int) -> dict:
    """Best-of-N throughput (M instr/s) per profile per mode."""
    rates: dict = {}
    for name in profiles:
        rates[name] = {}
        for mode in MODES:
            best = max(measure_once(name, budget, mode) for _ in range(repeats))
            rates[name][mode.value] = round(best / 1e6, 3)
            print(
                f"{name:14s} {mode.value:10s} "
                f"{rates[name][mode.value]:6.2f} M guest-instructions/s"
            )
    return rates


def load_record(path: Path) -> dict:
    if path.exists():
        return json.loads(path.read_text())
    return {"history": []}


def check_regression(record: dict, rates: dict, tolerance: float) -> int:
    """Compare fresh rates to the committed ``current``; returns exit code."""
    committed = record.get("current")
    if not committed:
        print("no committed entry to compare against; skipping gate")
        return 0
    floor = 1.0 - tolerance
    failures = []
    for name, modes in rates.items():
        base_modes = committed.get("rates", {}).get(name)
        if not base_modes:
            continue
        for mode_name, rate in modes.items():
            base = base_modes.get(mode_name)
            if base and rate < base * floor:
                failures.append(
                    f"{name}/{mode_name}: {rate:.2f} M/s < "
                    f"{floor:.0%} of committed {base:.2f} M/s"
                )
    if failures:
        print("throughput regression detected:")
        for line in failures:
            print("  " + line)
        return 1
    print(f"throughput within {tolerance:.0%} of the committed baseline")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profiles", nargs="+", default=list(DEFAULT_PROFILES))
    parser.add_argument("--budget", type=int, default=1_000_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--update", action="store_true")
    parser.add_argument("--check", action="store_true")
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_simloop.json",
    )
    parser.add_argument("--label", default="")
    args = parser.parse_args()

    rates = measure(args.profiles, args.budget, args.repeats)
    record = load_record(args.output)

    exit_code = 0
    if args.check:
        exit_code = check_regression(record, rates, args.tolerance)

    if args.update:
        previous = record.get("current")
        speedup = {}
        if previous:
            record.setdefault("history", []).append(previous)
            for name, modes in rates.items():
                base_modes = previous.get("rates", {}).get(name, {})
                speedup[name] = {
                    mode_name: round(rate / base_modes[mode_name], 2)
                    for mode_name, rate in modes.items()
                    if base_modes.get(mode_name)
                }
        record["current"] = {
            "label": args.label or "bench_throughput run",
            "budget": args.budget,
            "repeats": args.repeats,
            "rates": rates,
        }
        if speedup:
            record["current"]["speedup_vs_previous"] = speedup
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.output}")

    return exit_code


if __name__ == "__main__":
    sys.exit(main())
