#!/usr/bin/env python3
"""Developer utility: profile the simulator's hot loop.

Prints simulation throughput (guest instructions per second) per gating
mode and, with ``--cprofile``, the top functions by cumulative time.  Used
to keep the full 29-app benchmark suite within its time budget.

Usage:
    python scripts/profile_simulator.py [benchmark] [instructions]
        [--cprofile] [--json] [--backend NAME] [--no-fastpath]

``--json`` emits ``{"mode": instr_per_second, ...}`` on stdout (for
scripts/bench_throughput.py and the CI perf-smoke job); ``--backend``
selects the execution backend (reference / fastpath / vectorized;
``--no-fastpath`` is the deprecated spelling of ``--backend reference``).

``--breakdown`` runs one extra POWERCHOP simulation and reports where its
wall-clock went: pass A (the recording walk), pass B (the array flush
kernels), and scalar (window-boundary blocks executed out of line).  With
``--json`` the output becomes ``{"rates": ..., "breakdown": ...}`` — the
flat shape is kept whenever ``--breakdown`` is absent, so existing
consumers are unaffected.

``--proofs`` attaches a proof certificate (``repro.staticcheck.proofs``)
to every run; on certified-deterministic profiles (dgemm, stencil) the
vectorized backend then memoizes pass-A walk traces, and ``--breakdown``
additionally reports the memo counters.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import time

from repro.sim.backends import available_backends
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import design_for_suite
from repro.workloads.profiles import build_workload
from repro.workloads.suites import get_profile


def throughput(
    benchmark: str,
    budget: int,
    mode: GatingMode,
    backend: str = "fastpath",
    use_proofs: bool = False,
) -> float:
    profile = get_profile(benchmark)
    design = design_for_suite(profile.suite)
    workload = build_workload(profile)
    proofs = _certificate(profile) if use_proofs else None
    simulator = HybridSimulator(
        design, workload, mode, backend=backend, proofs=proofs
    )
    start = time.perf_counter()
    result = simulator.run(budget)
    elapsed = time.perf_counter() - start
    return result.instructions / elapsed


def _certificate(profile):
    from repro.staticcheck.proofs import ProofStore

    return ProofStore().get_or_certify(profile)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="gobmk")
    parser.add_argument("instructions", nargs="?", type=int, default=1_000_000)
    parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="execution backend to measure (default: fastpath)",
    )
    parser.add_argument(
        "--no-fastpath",
        action="store_true",
        help="deprecated: same as --backend reference",
    )
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--cprofile", action="store_true")
    parser.add_argument(
        "--breakdown",
        action="store_true",
        help="report the run loop's wall-clock split (pass A walk / "
        "pass B flushes / scalar boundary blocks) from one POWERCHOP run",
    )
    parser.add_argument(
        "--proofs",
        action="store_true",
        help="attach proof certificates (inert; unlocks walk-trace "
        "memoization on certified-deterministic profiles)",
    )
    args = parser.parse_args()

    if args.backend and args.no_fastpath:
        parser.error("--no-fastpath conflicts with --backend")
    backend = args.backend or ("reference" if args.no_fastpath else "fastpath")

    rates = {}
    for mode in (GatingMode.FULL, GatingMode.POWERCHOP, GatingMode.MINIMAL):
        rates[mode.value] = throughput(
            args.benchmark, args.instructions, mode, backend, args.proofs
        )

    breakdown = None
    if args.breakdown:
        profile = get_profile(args.benchmark)
        design = design_for_suite(profile.suite)
        workload = build_workload(profile)
        simulator = HybridSimulator(
            design,
            workload,
            GatingMode.POWERCHOP,
            backend=backend,
            proofs=_certificate(profile) if args.proofs else None,
        )
        simulator.run(args.instructions)
        fs = simulator.fastpath_state
        total = fs.pass_a_seconds + fs.pass_b_seconds + fs.scalar_seconds
        breakdown = {
            "pass_a_seconds": round(fs.pass_a_seconds, 4),
            "pass_b_seconds": round(fs.pass_b_seconds, 4),
            "scalar_seconds": round(fs.scalar_seconds, 4),
            "pass_a_share": round(fs.pass_a_seconds / total, 3) if total else 0.0,
            "pass_b_share": round(fs.pass_b_seconds / total, 3) if total else 0.0,
            "scalar_share": round(fs.scalar_seconds / total, 3) if total else 0.0,
        }
        if args.proofs:
            breakdown["walk_memo"] = {
                "hits": fs.walk_memo_hits,
                "records": fs.walk_memo_records,
                "blocks_replayed": fs.walk_memo_blocks,
                "proof_validations": fs.proof_validations,
                "proof_rejections": fs.proof_rejections,
            }

    if args.json:
        if breakdown is not None:
            print(json.dumps({"rates": rates, "breakdown": breakdown}))
        else:
            print(json.dumps(rates))
    else:
        for mode_name, rate in rates.items():
            print(f"{mode_name:10s} {rate / 1e6:6.2f} M guest-instructions/s")
        if breakdown is not None:
            print("run-loop breakdown (POWERCHOP):")
            for part in ("pass_a", "pass_b", "scalar"):
                print(
                    f"  {part:8s} {breakdown[part + '_seconds']:8.4f}s "
                    f"({breakdown[part + '_share']:5.1%})"
                )
            memo = breakdown.get("walk_memo")
            if memo is not None:
                print(
                    f"  memo     {memo['hits']} hit(s) / "
                    f"{memo['records']} record(s), "
                    f"{memo['blocks_replayed']:,} blocks replayed"
                )

    if args.cprofile:
        profile = get_profile(args.benchmark)
        design = design_for_suite(profile.suite)
        workload = build_workload(profile)
        simulator = HybridSimulator(
            design, workload, GatingMode.POWERCHOP, backend=backend
        )
        profiler = cProfile.Profile()
        profiler.enable()
        simulator.run(args.instructions)
        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)


if __name__ == "__main__":
    main()
