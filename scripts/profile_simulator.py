#!/usr/bin/env python3
"""Developer utility: profile the simulator's hot loop.

Prints simulation throughput (guest instructions per second) per gating
mode and, with ``--cprofile``, the top functions by cumulative time.  Used
to keep the full 29-app benchmark suite within its time budget.

Usage:
    python scripts/profile_simulator.py [benchmark] [instructions]
        [--cprofile] [--json] [--backend NAME] [--no-fastpath]

``--json`` emits ``{"mode": instr_per_second, ...}`` on stdout (for
scripts/bench_throughput.py and the CI perf-smoke job); ``--backend``
selects the execution backend (reference / fastpath / vectorized;
``--no-fastpath`` is the deprecated spelling of ``--backend reference``).
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import time

from repro.sim.backends import available_backends
from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import design_for_suite
from repro.workloads.profiles import build_workload
from repro.workloads.suites import get_profile


def throughput(
    benchmark: str, budget: int, mode: GatingMode, backend: str = "fastpath"
) -> float:
    profile = get_profile(benchmark)
    design = design_for_suite(profile.suite)
    workload = build_workload(profile)
    simulator = HybridSimulator(design, workload, mode, backend=backend)
    start = time.perf_counter()
    result = simulator.run(budget)
    elapsed = time.perf_counter() - start
    return result.instructions / elapsed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="gobmk")
    parser.add_argument("instructions", nargs="?", type=int, default=1_000_000)
    parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="execution backend to measure (default: fastpath)",
    )
    parser.add_argument(
        "--no-fastpath",
        action="store_true",
        help="deprecated: same as --backend reference",
    )
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--cprofile", action="store_true")
    args = parser.parse_args()

    if args.backend and args.no_fastpath:
        parser.error("--no-fastpath conflicts with --backend")
    backend = args.backend or ("reference" if args.no_fastpath else "fastpath")

    rates = {}
    for mode in (GatingMode.FULL, GatingMode.POWERCHOP, GatingMode.MINIMAL):
        rates[mode.value] = throughput(
            args.benchmark, args.instructions, mode, backend
        )

    if args.json:
        print(json.dumps(rates))
    else:
        for mode_name, rate in rates.items():
            print(f"{mode_name:10s} {rate / 1e6:6.2f} M guest-instructions/s")

    if args.cprofile:
        profile = get_profile(args.benchmark)
        design = design_for_suite(profile.suite)
        workload = build_workload(profile)
        simulator = HybridSimulator(
            design, workload, GatingMode.POWERCHOP, backend=backend
        )
        profiler = cProfile.Profile()
        profiler.enable()
        simulator.run(args.instructions)
        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)


if __name__ == "__main__":
    main()
