#!/usr/bin/env python3
"""Developer utility: profile the simulator's hot loop.

Prints simulation throughput (guest instructions per second) per gating
mode and, with ``--cprofile``, the top functions by cumulative time.  Used
to keep the full 29-app benchmark suite within its time budget.

Usage:
    python scripts/profile_simulator.py [benchmark] [instructions]
        [--cprofile] [--json] [--no-fastpath]

``--json`` emits ``{"mode": instr_per_second, ...}`` on stdout (for
scripts/bench_throughput.py and the CI perf-smoke job); ``--no-fastpath``
measures the reference execution loop instead of the steady-phase fast
path.
"""

from __future__ import annotations

import cProfile
import json
import pstats
import sys
import time

from repro.sim.simulator import GatingMode, HybridSimulator
from repro.uarch.config import design_for_suite
from repro.workloads.profiles import build_workload
from repro.workloads.suites import get_profile


def throughput(
    benchmark: str, budget: int, mode: GatingMode, fastpath: bool = True
) -> float:
    profile = get_profile(benchmark)
    design = design_for_suite(profile.suite)
    workload = build_workload(profile)
    simulator = HybridSimulator(design, workload, mode, fastpath=fastpath)
    start = time.perf_counter()
    result = simulator.run(budget)
    elapsed = time.perf_counter() - start
    return result.instructions / elapsed


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    benchmark = args[0] if args else "gobmk"
    budget = int(args[1]) if len(args) > 1 else 1_000_000
    fastpath = "--no-fastpath" not in sys.argv
    as_json = "--json" in sys.argv

    rates = {}
    for mode in (GatingMode.FULL, GatingMode.POWERCHOP, GatingMode.MINIMAL):
        rates[mode.value] = throughput(benchmark, budget, mode, fastpath)

    if as_json:
        print(json.dumps(rates))
    else:
        for mode_name, rate in rates.items():
            print(f"{mode_name:10s} {rate / 1e6:6.2f} M guest-instructions/s")

    if "--cprofile" in sys.argv:
        profile = get_profile(benchmark)
        design = design_for_suite(profile.suite)
        workload = build_workload(profile)
        simulator = HybridSimulator(
            design, workload, GatingMode.POWERCHOP, fastpath=fastpath
        )
        profiler = cProfile.Profile()
        profiler.enable()
        simulator.run(budget)
        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)


if __name__ == "__main__":
    main()
