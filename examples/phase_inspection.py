#!/usr/bin/env python3
"""Inspect PowerChop's phase detection and the policies it assigns.

Runs `msn` (the paper's Figure 2 workload) on the mobile core with phase
vector collection enabled, then prints: the recurring phase signatures, the
gating policy the CDE assigned to each, and the Figure 8 phase-quality
metric (Manhattan distance between same-signature windows).

Usage:
    python examples/phase_inspection.py [benchmark] [instructions]
"""

import sys
from collections import Counter

from repro import MOBILE, GatingMode, design_for_suite, get_profile
from repro.analysis import format_table, phase_quality
from repro.core import PowerChopConfig
from repro.sim.simulator import HybridSimulator
from repro.workloads import build_workload


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "msn"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 6_000_000

    profile = get_profile(benchmark)
    design = design_for_suite(profile.suite)
    workload = build_workload(profile)
    simulator = HybridSimulator(
        design,
        workload,
        GatingMode.POWERCHOP,
        powerchop_config=PowerChopConfig(collect_phase_vectors=True),
    )
    result = simulator.run(budget)
    controller = simulator.controller
    assert controller is not None

    signature_counts = Counter(sig for sig, _vec in controller.phase_log)
    rows = []
    for signature, count in signature_counts.most_common(10):
        policy = controller.cde.known_policy(signature)
        if policy is None:
            policy_text = "(transition - ignored)"
        else:
            policy_text = (
                f"V={'on' if policy.vpu_on else 'OFF'} "
                f"B={'on' if policy.bpu_on else 'OFF'} "
                f"M={policy.mlc_ways}-way"
            )
        sig_text = ",".join(f"{tid & 0xFFFF:04x}" for tid in signature)
        rows.append((sig_text, count, policy_text))
    print(f"{benchmark} on {design.name}: {result.windows} windows, "
          f"{result.new_phases} phases characterised\n")
    print(format_table(("signature (hottest-4 tids)", "windows", "policy"), rows))

    quality = phase_quality(controller.phase_log)
    print(
        f"\nphase quality: {quality.identical_fraction:.1%} of translations "
        f"identical between same-signature windows "
        f"(paper: 97.8% average, never below 93.2%)"
    )
    print(
        f"PVT: {result.pvt_hits}/{result.pvt_lookups} hits, "
        f"{result.pvt_evictions} evictions; "
        f"CDE invoked {result.cde_invocations} times"
    )


if __name__ == "__main__":
    main()
