#!/usr/bin/env python3
"""The paper's headline mobile story: PowerChop on web-browsing workloads.

Runs all five MobileBench R-GWB-class workloads on the Cortex-A9-class
mobile core — the design point where the paper reports PowerChop's largest
wins (19 % average core power reduction, up to 40 % on `amazon`) — and
prints a per-application breakdown.

Usage:
    python examples/mobile_web_browsing.py [instructions]
"""

import sys

from repro import (
    GatingMode,
    MOBILE,
    mobile_benchmarks,
    power_reduction,
    leakage_reduction,
    run_simulation,
    slowdown,
)
from repro.analysis import format_table


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 6_000_000
    rows = []
    for profile in mobile_benchmarks():
        full = run_simulation(
            MOBILE, profile, GatingMode.FULL, max_instructions=budget
        )
        chopped = run_simulation(
            MOBILE, profile, GatingMode.POWERCHOP, max_instructions=budget
        )
        energy = chopped.energy
        rows.append(
            (
                profile.name,
                f"{slowdown(full, chopped):+.2%}",
                f"{power_reduction(full, chopped):.1%}",
                f"{leakage_reduction(full, chopped):.1%}",
                f"{energy.vpu_gated_frac:.0%}",
                f"{energy.bpu_gated_frac:.0%}",
                f"{energy.mlc_gated_frac(MOBILE.mlc_assoc):.0%}",
            )
        )
    print(
        format_table(
            (
                "app",
                "slowdown",
                "power_saved",
                "leakage_saved",
                "vpu_off",
                "bpu_off",
                "mlc_gated",
            ),
            rows,
        )
    )
    print(
        "\npaper shape: browsing is scalar (VPU off ~90%+), the tournament "
        "BPU matters only in JS-heavy phases (~40% gated), and the 2MB MLC "
        "is oversized for DOM-resident phases (~20% gated)."
    )


if __name__ == "__main__":
    main()
