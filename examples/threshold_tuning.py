#!/usr/bin/env python3
"""Explore the criticality-threshold tradeoff (paper §V-A).

The paper sets its thresholds to save power "while minimizing the
performance impact", and notes that more aggressive thresholds targeting
energy minimisation are possible.  This example sweeps Threshold_VPU on
`soplex` — an app whose vector phases sit near the decision boundary — and
prints the resulting performance/power frontier.

Usage:
    python examples/threshold_tuning.py [benchmark] [instructions]
"""

import sys

from repro import SERVER, get_profile
from repro.analysis import format_table
from repro.sim.sweep import sweep_powerchop_thresholds


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "soplex"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 2_000_000
    thresholds = (0.001, 0.005, 0.01, 0.05, 0.20, 0.50)
    records = sweep_powerchop_thresholds(
        SERVER, get_profile(benchmark), thresholds, max_instructions=budget
    )
    rows = [
        (
            record["label"],
            f"{record['slowdown']:+.2%}",
            f"{record['power_reduction']:.2%}",
            f"{record['vpu_gated_frac']:.1%}",
        )
        for record in records
    ]
    print(f"Threshold_VPU sweep on {benchmark} (server core)\n")
    print(format_table(("config", "slowdown", "power_saved", "vpu_off"), rows))
    print(
        "\nHigher thresholds gate the VPU more aggressively: more power "
        "saved, but vector phases start paying the scalar-emulation cost."
    )


if __name__ == "__main__":
    main()
