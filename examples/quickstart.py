#!/usr/bin/env python3
"""Quickstart: run PowerChop on one benchmark and report the savings.

Simulates `gobmk` (SPEC CPU2006-class synthetic workload) on the server
design point under three configurations — always-fully-powered, PowerChop,
and always-minimally-powered — and prints the performance/power tradeoff
each achieves.

Usage:
    python examples/quickstart.py [benchmark] [instructions]
"""

import sys

from repro import (
    GatingMode,
    SERVER,
    design_for_suite,
    get_profile,
    leakage_reduction,
    power_reduction,
    run_simulation,
    slowdown,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gobmk"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 2_000_000

    profile = get_profile(benchmark)
    design = design_for_suite(profile.suite)
    print(f"benchmark : {profile.name} ({profile.suite})")
    print(f"design    : {design.name}")
    print(f"budget    : {budget:,} guest instructions\n")

    results = {}
    for mode in (GatingMode.FULL, GatingMode.POWERCHOP, GatingMode.MINIMAL):
        results[mode] = run_simulation(
            design, profile, mode, max_instructions=budget
        )
        r = results[mode]
        print(
            f"{mode.value:10s} ipc={r.ipc:5.2f}  power={r.energy.avg_power_w:6.3f} W"
            f"  leakage={r.energy.avg_leakage_w:6.3f} W"
        )

    full = results[GatingMode.FULL]
    chopped = results[GatingMode.POWERCHOP]
    minimal = results[GatingMode.MINIMAL]
    print()
    print(f"PowerChop slowdown     : {slowdown(full, chopped):+.2%}")
    print(f"PowerChop power saved  : {power_reduction(full, chopped):.2%}")
    print(f"PowerChop leakage saved: {leakage_reduction(full, chopped):.2%}")
    print(f"minimal-power slowdown : {slowdown(full, minimal):+.2%}")
    energy = chopped.energy
    print()
    print(f"VPU gated {energy.vpu_gated_frac:.1%} of cycles, "
          f"BPU gated {energy.bpu_gated_frac:.1%}, "
          f"MLC way-residency {dict(sorted(energy.mlc_way_residency.items()))}")
    print(f"phases: {chopped.new_phases} characterised, "
          f"PVT {chopped.pvt_hits}/{chopped.pvt_lookups} hits")


if __name__ == "__main__":
    main()
