#!/usr/bin/env python3
"""Define a custom synthetic workload and manage it with PowerChop.

Shows the full workload-description API: code regions (block counts,
instruction mixes, branch-behaviour mixes, vector placement), per-phase
memory behaviour, and a phase schedule.  The example models a toy media
pipeline: a vectorised decode kernel, a pointer-chasing index update, and
a predictable streaming writeback — three phases with very different unit
criticality.

Usage:
    python examples/custom_workload.py [instructions]
"""

import sys

from repro import GatingMode, SERVER, run_simulation, slowdown
from repro.workloads import (
    BenchmarkProfile,
    MemoryBehavior,
    PhaseDecl,
    RegionSpec,
    build_workload,
)
from repro.workloads.mixes import GLOBAL_HEAVY, NOISY, PREDICTABLE

MEDIA_PIPELINE = BenchmarkProfile(
    name="media-pipeline",
    suite="custom",
    description="Toy media pipeline: decode / index / flush phases.",
    phases=(
        PhaseDecl(
            name="decode",
            region=RegionSpec(
                n_blocks=24,
                branch_mix=PREDICTABLE,
                vector_frac=0.25,
                vector_style="dense",
                mem_frac=0.30,
            ),
            memory=MemoryBehavior(working_set_kb=384, pattern="loop", random_frac=0.2),
            blocks=120_000,
        ),
        PhaseDecl(
            name="index_update",
            region=RegionSpec(n_blocks=32, branch_mix=NOISY, mem_frac=0.40),
            memory=MemoryBehavior(working_set_kb=8192, pattern="random"),
            blocks=60_000,
        ),
        PhaseDecl(
            name="flush",
            region=RegionSpec(n_blocks=16, branch_mix=GLOBAL_HEAVY, mem_frac=0.35),
            memory=MemoryBehavior(working_set_kb=4096, pattern="stream"),
            blocks=60_000,
        ),
    ),
    schedule=("decode", "index_update", "decode", "flush"),
    seed=2026,
)


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 3_000_000
    full = run_simulation(
        SERVER, MEDIA_PIPELINE, GatingMode.FULL, max_instructions=budget
    )
    chopped = run_simulation(
        SERVER, MEDIA_PIPELINE, GatingMode.POWERCHOP, max_instructions=budget
    )
    energy = chopped.energy
    print(f"workload  : {MEDIA_PIPELINE.name} ({len(MEDIA_PIPELINE.phases)} phases)")
    print(f"ipc       : {full.ipc:.2f} full -> {chopped.ipc:.2f} managed")
    print(f"slowdown  : {slowdown(full, chopped):+.2%}")
    print(
        f"power     : {full.energy.avg_power_w:.3f} W -> "
        f"{chopped.energy.avg_power_w:.3f} W"
    )
    print(f"vpu off   : {energy.vpu_gated_frac:.1%} of cycles "
          "(decode keeps it on, index/flush gate it)")
    print(f"bpu off   : {energy.bpu_gated_frac:.1%} of cycles "
          "(flush's correlated branches keep it on)")
    print(f"mlc ways  : {dict(sorted(energy.mlc_way_residency.items()))}")
    print(f"phases    : {chopped.new_phases} characterised by the CDE")

    # The workload object itself is also inspectable:
    workload = build_workload(MEDIA_PIPELINE)
    for name, phase in workload.phases.items():
        region = phase.region
        print(
            f"  phase {name}: {region.n_blocks} blocks, "
            f"{region.total_static_instructions} static instructions"
        )


if __name__ == "__main__":
    main()
